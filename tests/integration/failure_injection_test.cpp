// Failure injection: the simulator must fail loudly and cleanly — no hangs,
// no crashes, no corrupted state — when programs or configurations are
// broken.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "src/apps/app.hpp"
#include "src/core/error.hpp"
#include "src/core/simulator.hpp"
#include "src/core/sync.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/clustered_memory.hpp"
#include "src/mem/coherence.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

MachineSpec mc(unsigned procs = 4) {
  MachineSpec c;
  c.num_procs = procs;
  c.procs_per_cluster = 2;
  return c;
}

class FaultyProgram : public Program {
 public:
  enum class Fault {
    ThrowInSetup,
    ThrowMidRun,
    ThrowInVerify,
    BarrierTooFew,
    LockNeverReleased,
    EmptyBody,
    InfiniteCompute,
    SameCycleSpin,
    GiantRunStream,
    InfiniteRunStream,
    StreamWithSpinners,
  };
  explicit FaultyProgram(Fault f) : fault_(f) {}

  [[nodiscard]] std::string name() const override { return "faulty"; }

  void setup(AddressSpace& as, const MachineSpec& cfg) override {
    if (fault_ == Fault::ThrowInSetup) throw std::runtime_error("setup bug");
    base_ = as.alloc(4096, "mem");
    bar_ = std::make_unique<Barrier>(cfg.num_procs, "phase");
  }

  SimTask body(Proc& p) override {
    switch (fault_) {
      case Fault::ThrowMidRun:
        co_await p.read(base_);
        if (p.id() == 1) throw std::logic_error("mid-run bug");
        co_await p.compute(10);
        break;
      case Fault::BarrierTooFew:
        if (p.id() != 0) co_await p.barrier(*bar_);  // proc 0 skips
        break;
      case Fault::LockNeverReleased:
        co_await p.acquire(lock_);  // nobody releases: all but one deadlock
        break;
      case Fault::EmptyBody:
        break;  // completing without any operation must be legal
      case Fault::InfiniteCompute:
        for (;;) co_await p.compute(1);  // runs forever, time advances
      case Fault::SameCycleSpin:
        // Livelock signature: lock ping-pong generates events forever
        // without simulated time ever advancing.
        for (;;) {
          co_await p.acquire(lock_);
          p.release(lock_);
        }
      case Fault::GiantRunStream:
        // One run whose retirement spans far more than any cycle budget:
        // the watchdog must fire while the stream is still in flight, not
        // just between coroutine resumes.
        co_await p.run(base_, 0, 1'000'000'000, false, 10);
        break;
      case Fault::InfiniteRunStream:
        for (;;) co_await p.run(base_, 0, 1'000'000, false, 10);
      case Fault::StreamWithSpinners:
        // Proc 0 has a giant run in flight (its next resume is cycles away)
        // while the others ping-pong a lock at a fixed cycle, so simulated
        // time never reaches the stream's resume point.
        if (p.id() == 0) {
          co_await p.run(base_, 0, 1'000'000'000, false, 10);
        } else {
          for (;;) {
            co_await p.acquire(lock_);
            p.release(lock_);
          }
        }
        break;
      default:
        co_await p.compute(1);
    }
  }

  void verify() const override {
    if (fault_ == Fault::ThrowInVerify) {
      throw std::runtime_error("verification failed");
    }
  }

 private:
  Fault fault_;
  Addr base_ = 0;
  std::unique_ptr<Barrier> bar_;
  Lock lock_;
};

TEST(FailureInjection, SetupExceptionPropagates) {
  FaultyProgram p(FaultyProgram::Fault::ThrowInSetup);
  EXPECT_THROW(simulate(p, mc()), std::runtime_error);
}

TEST(FailureInjection, MidRunExceptionPropagates) {
  FaultyProgram p(FaultyProgram::Fault::ThrowMidRun);
  EXPECT_THROW(simulate(p, mc()), std::logic_error);
}

TEST(FailureInjection, VerifyExceptionPropagates) {
  FaultyProgram p(FaultyProgram::Fault::ThrowInVerify);
  EXPECT_THROW(simulate(p, mc()), std::runtime_error);
}

TEST(FailureInjection, MismatchedBarrierIsDeadlockNotHang) {
  FaultyProgram p(FaultyProgram::Fault::BarrierTooFew);
  EXPECT_THROW(simulate(p, mc()), std::runtime_error);
}

TEST(FailureInjection, AbandonedLockIsDeadlockNotHang) {
  FaultyProgram p(FaultyProgram::Fault::LockNeverReleased);
  EXPECT_THROW(simulate(p, mc()), std::runtime_error);
}

TEST(FailureInjection, EmptyBodiesFinishAtTimeZero) {
  FaultyProgram p(FaultyProgram::Fault::EmptyBody);
  const SimResult r = simulate(p, mc());
  EXPECT_EQ(r.wall_time, 0u);
}

TEST(FailureInjection, SimulatorReusableAfterFailure) {
  // A failed run must not poison subsequent runs of the same Simulator.
  Simulator sim(mc());
  FaultyProgram bad(FaultyProgram::Fault::ThrowMidRun);
  EXPECT_THROW(sim.run(bad), std::logic_error);
  auto good = make_app("fft", ProblemScale::Test);
  MachineSpec cfg = mc(16);
  Simulator sim2(cfg);
  EXPECT_NO_THROW(sim2.run(*good));
}

TEST(FailureInjection, InvalidConfigRejectedBeforeRunning) {
  MachineSpec bad = mc();
  bad.procs_per_cluster = 3;  // does not divide 4
  EXPECT_THROW(Simulator{bad}, std::invalid_argument);
  EXPECT_THROW(Simulator{bad}, ConfigError);
}

// --- Watchdog ---------------------------------------------------------------

TEST(Watchdog, InfiniteProgramTripsMaxCyclesInsteadOfHanging) {
  FaultyProgram p(FaultyProgram::Fault::InfiniteCompute);
  MachineSpec cfg = mc();
  cfg.max_cycles = 50000;
  try {
    simulate(p, cfg);
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::Livelock);
    EXPECT_NE(std::string(e.what()).find("max_cycles"), std::string::npos);
    // The snapshot names every processor and the machine state.
    EXPECT_EQ(e.snapshot().procs.size(), 4u);
    EXPECT_GE(e.snapshot().cycle, 50000u);
  }
}

TEST(Watchdog, InfiniteProgramTripsMaxEvents) {
  FaultyProgram p(FaultyProgram::Fault::InfiniteCompute);
  MachineSpec cfg = mc();
  cfg.max_events = 10000;
  try {
    simulate(p, cfg);
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_NE(std::string(e.what()).find("max_events"), std::string::npos);
    EXPECT_GE(e.snapshot().events_processed, 10000u);
  }
}

TEST(Watchdog, SameCycleSpinTripsNoProgressDetector) {
  FaultyProgram p(FaultyProgram::Fault::SameCycleSpin);
  MachineSpec cfg = mc();
  cfg.no_progress_events = 5000;  // default is millions; keep the test fast
  try {
    simulate(p, cfg);
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_NE(std::string(e.what()).find("no progress"), std::string::npos);
  }
}

TEST(Watchdog, HostDeadlineTripsTimeoutError) {
  FaultyProgram p(FaultyProgram::Fault::InfiniteCompute);
  MachineSpec cfg = mc();
  cfg.max_host_seconds = 0.05;
  try {
    simulate(p, cfg);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::Timeout);
    EXPECT_TRUE(is_retryable(e.kind()));
    EXPECT_NE(std::string(e.what()).find("host deadline"), std::string::npos);
    EXPECT_EQ(e.snapshot().procs.size(), 4u);
  }
}

// --- Watchdogs vs run streams (PR 5's batched references) -------------------
//
// A run stream retires thousands of references per scheduler entry, so every
// detector must fire while a stream is in flight — a watchdog that only
// looked between coroutine resumes would sail past its budget.

TEST(Watchdog, MaxCyclesFiresMidRunStream) {
  FaultyProgram p(FaultyProgram::Fault::GiantRunStream);
  MachineSpec cfg = mc();
  cfg.max_cycles = 50000;
  try {
    simulate(p, cfg);
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_NE(std::string(e.what()).find("max_cycles"), std::string::npos);
    // Tripped promptly: the stream had ~10^10 cycles left to run.
    EXPECT_GE(e.snapshot().cycle, 50000u);
    EXPECT_LT(e.snapshot().cycle, 1'000'000u);
  }
}

TEST(Watchdog, HostDeadlineFiresMidRunStream) {
  FaultyProgram p(FaultyProgram::Fault::InfiniteRunStream);
  MachineSpec cfg = mc();
  cfg.max_host_seconds = 0.05;
  EXPECT_THROW(simulate(p, cfg), TimeoutError);
}

TEST(Watchdog, NoProgressFiresWithStreamInFlight) {
  FaultyProgram p(FaultyProgram::Fault::StreamWithSpinners);
  MachineSpec cfg = mc();
  cfg.no_progress_events = 5000;
  try {
    simulate(p, cfg);
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_NE(std::string(e.what()).find("no progress"), std::string::npos);
  }
}

TEST(Watchdog, BudgetsDoNotDisturbHealthyRuns) {
  auto app = make_app("fft", ProblemScale::Test);
  MachineSpec cfg = mc(16);
  cfg.max_cycles = 100'000'000;
  cfg.max_events = 100'000'000;
  cfg.max_host_seconds = 300;
  EXPECT_NO_THROW(Simulator(cfg).run(*app));
}

// --- Deadlock diagnostics ---------------------------------------------------

TEST(DeadlockDiagnostics, SnapshotNamesParkedBarrierAndBlockedProcs) {
  FaultyProgram p(FaultyProgram::Fault::BarrierTooFew);
  try {
    simulate(p, mc());
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    // Procs 1..3 are parked on barrier 'phase' with 3 of 4 arrivals; proc 0
    // finished. The message alone must say all of that.
    EXPECT_NE(msg.find("barrier 'phase'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("arrived 3/4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("proc 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("proc 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("proc 3"), std::string::npos) << msg;
    ASSERT_EQ(e.snapshot().procs.size(), 4u);
    EXPECT_TRUE(e.snapshot().procs[0].finished);
    EXPECT_FALSE(e.snapshot().procs[1].finished);
  }
}

TEST(DeadlockDiagnostics, AbandonedLockNamesOwnerAndQueue) {
  FaultyProgram p(FaultyProgram::Fault::LockNeverReleased);
  try {
    simulate(p, mc());
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("blocked on lock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("owner proc"), std::string::npos) << msg;
  }
}

// --- Coherence invariant auditor --------------------------------------------

/// Drives a few processors directly against a memory system, then corrupts
/// the directory and checks audit() notices.
TEST(CoherenceAudit, CatchesCorruptedDirectoryEntry) {
  MachineSpec cfg = mc();
  cfg.validate();
  AddressSpace as;
  const Addr base = as.alloc(4096, "mem");
  CoherenceController cc(cfg, as);
  (void)cc.read(0, base, 0);
  (void)cc.write(2, base + 64, 0);
  EXPECT_NO_THROW(cc.audit());

  // Corrupt: claim a cluster caches the line that never touched it.
  DirEntry& e = cc.mutable_directory_for_test().entry(base);
  e.add(1);
  try {
    cc.audit();
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& ex) {
    EXPECT_EQ(ex.kind(), SimErrorKind::Protocol);
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("0x"), std::string::npos) << msg;  // names the line
    EXPECT_NE(msg.find("cluster 1"), std::string::npos) << msg;
  }
}

TEST(CoherenceAudit, CatchesStateMismatch) {
  MachineSpec cfg = mc();
  AddressSpace as;
  const Addr base = as.alloc(4096, "mem");
  CoherenceController cc(cfg, as);
  (void)cc.write(0, base, 0);  // line EXCLUSIVE in cluster 0
  EXPECT_NO_THROW(cc.audit());

  // Corrupt: directory says SHARED while the cache still holds EXCLUSIVE.
  cc.mutable_directory_for_test().entry(base).state = DirState::Shared;
  EXPECT_THROW(cc.audit(), ProtocolError);
}

TEST(CoherenceAudit, CatchesClusteredMemoryCorruption) {
  MachineSpec cfg = mc();
  cfg.cluster_style = ClusterStyle::SharedMemory;
  AddressSpace as;
  const Addr base = as.alloc(4096, "mem");
  ClusteredMemorySystem cms(cfg, as);
  (void)cms.read(0, base, 0);
  (void)cms.read(3, base, 0);  // second cluster fetches too
  EXPECT_NO_THROW(cms.audit());

  // Corrupt: drop a cluster from the sharer vector while its attraction
  // memory still holds the line.
  cms.mutable_directory_for_test().entry(base).remove(1);
  EXPECT_THROW(cms.audit(), ProtocolError);
}

TEST(CoherenceAudit, PeriodicAuditPassesOnHealthyApps) {
  for (const char* style : {"shared-cache", "shared-memory"}) {
    auto app = make_app("radix", ProblemScale::Test);
    MachineSpec cfg = mc(16);
    cfg.cluster_style = std::string(style) == "shared-cache"
                            ? ClusterStyle::SharedCache
                            : ClusterStyle::SharedMemory;
    cfg.cache.per_proc_bytes = 4 * 1024;  // finite: exercise evictions
    cfg.audit_interval = 256;
    EXPECT_NO_THROW(Simulator(cfg).run(*app)) << style;
  }
}

// --- Sweep degradation ------------------------------------------------------

class ConfigSensitiveProgram : public Program {
 public:
  [[nodiscard]] std::string name() const override { return "config-sensitive"; }
  void setup(AddressSpace& as, const MachineSpec& cfg) override {
    base_ = as.alloc(4096, "mem");
    if (cfg.procs_per_cluster == 2) {
      throw std::runtime_error("refuses to run at 2 procs per cluster");
    }
  }
  SimTask body(Proc& p) override {
    co_await p.read(base_);
    co_await p.compute(10);
  }

 private:
  Addr base_ = 0;
};

TEST(SweepDegradation, OneBrokenConfigStillReturnsTheOthers) {
  std::vector<MachineSpec> configs;
  for (unsigned ppc : {1u, 2u, 4u}) {
    MachineSpec cfg = mc(8);
    cfg.procs_per_cluster = ppc;
    configs.push_back(cfg);
  }
  const auto results =
      run_sweep({[] { return std::make_unique<ConfigSensitiveProgram>(); },
                 configs})
          .rows;
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_GT(results[0].wall_time, 0u);
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].error_kind, "app");
  EXPECT_NE(results[1].error.find("refuses to run"), std::string::npos);
  EXPECT_EQ(results[1].app_name, "config-sensitive");
  EXPECT_TRUE(results[2].ok);
  EXPECT_GT(results[2].wall_time, 0u);

  // The failure table renders exactly the broken config.
  std::ostringstream os;
  EXPECT_EQ(write_failures(os, results), 1u);
  EXPECT_NE(os.str().find("config-sensitive"), std::string::npos);
  EXPECT_NE(os.str().find("app error"), std::string::npos);
}

TEST(SweepDegradation, InvalidConfigReportedAsConfigError) {
  MachineSpec good = mc(8);
  MachineSpec bad = mc(8);
  bad.procs_per_cluster = 3;  // does not divide 8
  const auto results = run_sweep({[] { return make_app("fft", ProblemScale::Test); },
                                  {good, bad}})
                           .rows;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].error_kind, "config");
}

TEST(SweepDegradation, DeadlockedConfigCarriesSnapshotDiagnostics) {
  // A sweep where one config's program deadlocks: the row's error text must
  // contain the snapshot (parked barrier), and healthy rows still complete.
  std::vector<MachineSpec> configs = {mc()};
  const auto results =
      run_sweep({[] {
                   return std::make_unique<FaultyProgram>(
                       FaultyProgram::Fault::BarrierTooFew);
                 },
                 configs})
          .rows;
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].error_kind, "deadlock");
  EXPECT_NE(results[0].error.find("arrived 3/4"), std::string::npos);
}

}  // namespace
}  // namespace csim
