// Golden determinism: with the contention model disabled, every SimResult in
// the reference frame (all apps at test scale, both organizations, three
// cluster sizes at 16 KB plus the infinite-cache column) must stay
// bit-identical to the committed digests in golden_digests.txt.
//
// The digests are obs::result_digest over every counter, bucket, and
// per-cluster/per-processor breakdown, so any behavioral drift — however
// small — fails here. Regenerate the fixture only after proving the change
// is an intentional model change, never to silence a diff.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"
#include "src/obs/manifest.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

std::string fixture_path() {
  return std::string(CSIM_SOURCE_DIR) + "/tests/integration/golden_digests.txt";
}

/// "app style ppc cache" -> committed digest hex.
std::map<std::string, std::string> load_fixture() {
  std::ifstream in(fixture_path());
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << fixture_path();
  std::map<std::string, std::string> golden;
  std::string app, style, digest;
  unsigned ppc = 0;
  std::size_t cache = 0;
  while (in >> app >> style >> ppc >> cache >> digest) {
    std::ostringstream key;
    key << app << ' ' << style << ' ' << ppc << ' ' << cache;
    golden[key.str()] = digest;
  }
  return golden;
}

MachineSpec frame_config(ClusterStyle style, unsigned ppc, std::size_t cache) {
  return MachineSpecBuilder{}
      .procs(64)
      .procs_per_cluster(ppc)
      .style(style)
      .cache_bytes(cache)
      .build();
}

TEST(GoldenSweep, ContentionDisabledResultsMatchCommittedDigests) {
  const auto golden = load_fixture();
  ASSERT_EQ(golden.size(), 63u) << "fixture frame changed unexpectedly";

  unsigned checked = 0;
  for (const std::string& name : app_names()) {
    // One run_sweep per app: the golden path exercises the same entry point
    // the drivers use, and the worker pool keeps the frame fast.
    SweepRequest req;
    req.make_app = [&name] { return make_app(name, ProblemScale::Test); };
    struct Key {
      const char* style_name;
      ClusterStyle style;
      unsigned ppc;
      std::size_t cache;
    };
    std::vector<Key> keys;
    for (unsigned ppc : {1u, 4u, 8u}) {
      keys.push_back({"shared_cache", ClusterStyle::SharedCache, ppc, 16384});
      keys.push_back({"shared_memory", ClusterStyle::SharedMemory, ppc, 16384});
    }
    keys.push_back({"shared_cache", ClusterStyle::SharedCache, 4, 0});
    for (const Key& k : keys) {
      req.configs.push_back(frame_config(k.style, k.ppc, k.cache));
    }

    const SweepResult res = run_sweep(req);
    ASSERT_EQ(res.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const Key& k = keys[i];
      ASSERT_TRUE(res.rows[i].ok) << name << ": " << res.rows[i].error;
      std::ostringstream key;
      key << name << ' ' << k.style_name << ' ' << k.ppc << ' ' << k.cache;
      const auto it = golden.find(key.str());
      ASSERT_NE(it, golden.end()) << "no golden digest for " << key.str();
      EXPECT_EQ(obs::digest_hex(obs::result_digest(res.rows[i])), it->second)
          << "behavioral drift at " << key.str();
      ++checked;
    }
  }
  EXPECT_EQ(checked, golden.size());
}

}  // namespace
}  // namespace csim
