// Integration tests for the opt-in contention model: disabled runs carry no
// contention trace, enabled runs are deterministic, every stall cycle is
// accounted, and the simulated shared-cache bank-conflict rate agrees with
// the paper's Section 6 closed form (Table 4) under its own assumptions.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "src/analysis/bank_conflict.hpp"
#include "src/analysis/contention_check.hpp"
#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/address_space.hpp"
#include "src/obs/manifest.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

MachineSpec test_spec(ClusterStyle style, bool contention) {
  return MachineSpecBuilder{}
      .procs(16)
      .procs_per_cluster(4)
      .style(style)
      .cache_kb(16)
      .contention_enabled(contention)
      .build();
}

TEST(Contention, DisabledRunsCarryNoContentionTrace) {
  for (ClusterStyle style :
       {ClusterStyle::SharedCache, ClusterStyle::SharedMemory}) {
    auto app = make_app("fft", ProblemScale::Test);
    const SimResult r = simulate(*app, test_spec(style, false));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.totals.bank_conflicts, 0u);
    EXPECT_EQ(r.totals.bank_wait_cycles, 0u);
    EXPECT_EQ(r.totals.dir_wait_cycles, 0u);
    EXPECT_EQ(r.totals.nic_wait_cycles, 0u);
    EXPECT_EQ(r.aggregate().contention, 0u);
  }
}

TEST(Contention, EnabledRunsAreBitReproducible) {
  for (ClusterStyle style :
       {ClusterStyle::SharedCache, ClusterStyle::SharedMemory}) {
    auto app1 = make_app("radix", ProblemScale::Test);
    auto app2 = make_app("radix", ProblemScale::Test);
    const SimResult a = simulate(*app1, test_spec(style, true));
    const SimResult b = simulate(*app2, test_spec(style, true));
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_EQ(obs::result_digest(a), obs::result_digest(b));
  }
}

TEST(Contention, EnabledStallsAreVisibleAndFullyAccounted) {
  for (ClusterStyle style :
       {ClusterStyle::SharedCache, ClusterStyle::SharedMemory}) {
    auto app = make_app("fft", ProblemScale::Test);
    const SimResult r = simulate(*app, test_spec(style, true));
    ASSERT_TRUE(r.ok) << r.error;
    // Sixteen processors banging on shared resources must queue somewhere.
    EXPECT_GT(r.totals.bank_conflicts, 0u);
    EXPECT_GT(r.totals.bank_wait_cycles, 0u);
    EXPECT_GT(r.aggregate().contention, 0u);
    // Every processor's cycles remain fully classified: the per-proc buckets
    // (cpu + load + merge + sync + contention) still sum to wall time.
    for (const TimeBuckets& b : r.per_proc) {
      EXPECT_EQ(b.total(), r.wall_time);
    }
    // Contention can only slow a run down relative to the free machine.
    auto app2 = make_app("fft", ProblemScale::Test);
    const SimResult free_run = simulate(*app2, test_spec(style, false));
    EXPECT_GE(r.wall_time, free_run.wall_time);
  }
}

// Synthetic workload for the Section 6 cross-check: every processor issues a
// read to a uniformly pseudo-random line each cycle, the closed form's
// traffic assumption. A deterministic per-processor LCG picks the line.
class RandomBankProgram final : public Program {
 public:
  [[nodiscard]] std::string name() const override { return "random-bank"; }

  void setup(AddressSpace& as, const MachineSpec& cfg) override {
    line_bytes_ = cfg.cache.line_bytes;
    // Cover every bank uniformly; a multiple of m keeps the mapping exact.
    lines_ = cfg.cluster_banks() * 4;
    base_ = as.alloc(static_cast<std::size_t>(lines_) * line_bytes_, "pool");
  }

  SimTask body(Proc& p) override {
    // Warm-up: touch every line once so the measured loop is all cache hits
    // (the closed form models conflicts between hits, not miss latency).
    for (unsigned i = 0; i < lines_; ++i) {
      co_await p.read(base_ + static_cast<Addr>(i) * line_bytes_);
    }
    std::uint64_t s = 0x9e3779b97f4a7c15ULL * (p.id() + 1);
    for (unsigned i = 0; i < kIters; ++i) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      const auto idx = static_cast<Addr>((s >> 33) % lines_);
      co_await p.read(base_ + idx * line_bytes_);
    }
  }

  static constexpr unsigned kIters = 6000;

 private:
  Addr base_ = 0;
  unsigned lines_ = 0;
  unsigned line_bytes_ = 0;
};

/// Expected stall rate when an arbiter grants one reference per bank per
/// cycle and only the losers stall: E[n - distinct banks hit] / n for n
/// uniform references over m banks.
double losers_only_rate(unsigned m, unsigned n) {
  const double distinct =
      m * (1.0 - std::pow(1.0 - 1.0 / m, static_cast<int>(n)));
  return (n - distinct) / n;
}

TEST(Contention, BankConflictRateMatchesSection6ClosedForm) {
  // The closed form C = 1 - ((m-1)/m)^(n-1) counts a reference as delayed
  // whenever ANY of the other n-1 lockstep processors picked its bank — every
  // participant in a collision is charged. The event-driven queue instead
  // serializes same-cycle arrivals: the first reference to a bank proceeds
  // and only the later ones wait, so the simulated per-reference stall rate
  // must land in the bracket [losers-only expectation, closed form]
  // (for n = 2 the two bounds are exactly C/2 and C). runahead_quantum = 1
  // gives strict global event ordering, the closest event-driven analogue of
  // the lockstep assumption. The bracket (with 10% slack on each side) is
  // the stated tolerance: a transposed exponent, a wrong bank count, or
  // uncounted conflicts all land outside it.
  for (unsigned n : {2u, 4u}) {
    auto prog = std::make_unique<RandomBankProgram>();
    const MachineSpec cfg = MachineSpecBuilder{}
                                .procs(n)
                                .procs_per_cluster(n)
                                .style(ClusterStyle::SharedCache)
                                .cache_bytes(0)  // infinite: no capacity noise
                                .runahead_quantum(1)
                                .contention_enabled()
                                .build();
    const SimResult r = simulate(*prog, cfg);
    ASSERT_TRUE(r.ok) << r.error;
    const ContentionCheckRow row = contention_check_row(r);
    EXPECT_EQ(row.procs_per_cluster, n);
    EXPECT_EQ(row.banks, 4 * n);
    EXPECT_NEAR(row.analytic_rate, bank_conflict_probability(4 * n, n), 1e-12);
    EXPECT_GT(row.simulated_rate, 0.0);
    const double lower = losers_only_rate(4 * n, n);
    EXPECT_GE(row.simulated_rate, lower * 0.9)
        << "n=" << n << " losers-only bound=" << lower
        << " simulated=" << row.simulated_rate;
    EXPECT_LE(row.simulated_rate, row.analytic_rate * 1.1)
        << "n=" << n << " analytic=" << row.analytic_rate
        << " simulated=" << row.simulated_rate;
  }
}

TEST(Contention, CrossCheckTableSkipsUncontendedRows) {
  auto prog = std::make_unique<RandomBankProgram>();
  const MachineSpec on = MachineSpecBuilder{}
                             .procs(4)
                             .procs_per_cluster(4)
                             .style(ClusterStyle::SharedCache)
                             .cache_bytes(0)
                             .runahead_quantum(1)
                             .contention_enabled()
                             .build();
  auto prog2 = std::make_unique<RandomBankProgram>();
  const MachineSpec off =
      MachineSpecBuilder{}.procs(4).procs_per_cluster(4).cache_bytes(0).build();
  std::vector<SimResult> sweep = {simulate(*prog, on), simulate(*prog2, off)};
  const auto rows = contention_check(sweep);
  ASSERT_EQ(rows.size(), 1u);  // the contention-free row is skipped
  std::ostringstream os;
  write_contention_check(os, rows);
  EXPECT_NE(os.str().find("analytic"), std::string::npos);
  EXPECT_NE(os.str().find("simulated"), std::string::npos);
}

}  // namespace
}  // namespace csim
