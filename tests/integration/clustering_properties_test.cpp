// Cross-configuration properties of the full simulator: invariants the
// paper's methodology depends on, checked over every application.
#include <gtest/gtest.h>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

MachineSpec mc(unsigned procs, unsigned ppc, std::size_t cache_bytes) {
  MachineSpec c;
  c.num_procs = procs;
  c.procs_per_cluster = ppc;
  c.cache.per_proc_bytes = cache_bytes;
  return c;
}

class PerApp : public ::testing::TestWithParam<std::string> {};

TEST_P(PerApp, DeterministicAcrossIdenticalRuns) {
  auto a1 = make_app(GetParam(), ProblemScale::Test);
  auto a2 = make_app(GetParam(), ProblemScale::Test);
  const SimResult r1 = simulate(*a1, mc(16, 4, 8 * 1024));
  const SimResult r2 = simulate(*a2, mc(16, 4, 8 * 1024));
  EXPECT_EQ(r1.wall_time, r2.wall_time);
  EXPECT_EQ(r1.totals.reads, r2.totals.reads);
  EXPECT_EQ(r1.totals.read_misses, r2.totals.read_misses);
  EXPECT_EQ(r1.totals.invalidations, r2.totals.invalidations);
  for (unsigned p = 0; p < 16; ++p) {
    EXPECT_EQ(r1.per_proc[p].cpu, r2.per_proc[p].cpu);
  }
}

TEST_P(PerApp, ReferenceCountIndependentOfClustering) {
  std::uint64_t refs = 0;
  for (unsigned ppc : {1u, 2u, 8u}) {
    auto a = make_app(GetParam(), ProblemScale::Test);
    const SimResult r = simulate(*a, mc(16, ppc, 0));
    const std::uint64_t now = r.totals.reads + r.totals.writes;
    if (refs == 0) {
      refs = now;
    } else {
      EXPECT_EQ(now, refs) << "the address stream must not depend on ppc";
    }
  }
}

TEST_P(PerApp, MergesWithoutClusteringOnlyFromOwnWriteFills) {
  // With one processor per cluster, a merge can only happen when a read
  // joins the processor's *own* outstanding write-miss fill (the paper
  // explicitly counts reads on pending READ or WRITE fills as MERGE
  // misses). Apps that never read a freshly write-missed line must show
  // zero merges; all others are bounded by their write misses.
  auto a = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*a, mc(16, 1, 0));
  EXPECT_LE(r.totals.merges, r.totals.write_misses);
  const std::string n = GetParam();
  if (n == "fft" || n == "lu" || n == "barnes" || n == "fmm" ||
      n == "raytrace" || n == "volrend") {
    EXPECT_EQ(r.totals.merges, 0u);
  }
}

TEST_P(PerApp, InfiniteCacheNeverEvicts) {
  auto a = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*a, mc(16, 2, 0));
  EXPECT_EQ(r.totals.evictions, 0u);
}

TEST_P(PerApp, FiniteCapacityOnlyAddsMisses) {
  auto big = make_app(GetParam(), ProblemScale::Test);
  auto small = make_app(GetParam(), ProblemScale::Test);
  const SimResult r_inf = simulate(*big, mc(16, 2, 0));
  const SimResult r_4k = simulate(*small, mc(16, 2, 4 * 1024));
  EXPECT_GE(r_4k.totals.read_misses, r_inf.totals.read_misses);
  // Evictions write dirty lines home, which can make later misses *cheaper*
  // (30 vs 100 cycles), so a small speedup is legitimate; a large one is not.
  EXPECT_GE(r_4k.wall_time, r_inf.wall_time * 90 / 100);
}

TEST_P(PerApp, SingleClusterInfiniteCacheMissesAllCold) {
  // With one cluster holding every processor and an infinite cache there is
  // nobody to invalidate a copy, so every miss is a compulsory (cold) miss.
  auto a = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*a, mc(16, 16, 0));
  EXPECT_EQ(r.totals.total_misses(), r.totals.cold_misses);
  EXPECT_EQ(r.totals.invalidations, 0u);
}

TEST_P(PerApp, ClusteringNeverIncreasesInfiniteCacheMisses) {
  // With fully associative infinite caches there is no destructive
  // interference, so total misses must be non-increasing in cluster size
  // (modulo tiny timing-dependent invalidation differences; allow 2%).
  std::uint64_t prev = ~0ull;
  for (unsigned ppc : {1u, 2u, 4u, 8u}) {
    auto a = make_app(GetParam(), ProblemScale::Test);
    const SimResult r = simulate(*a, mc(16, ppc, 0));
    const std::uint64_t m = r.totals.total_misses();
    EXPECT_LE(m, prev + prev / 50) << "ppc=" << ppc;
    prev = m;
  }
}

TEST_P(PerApp, TimeBucketsConserve) {
  auto a = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*a, mc(16, 4, 16 * 1024));
  for (const auto& b : r.per_proc) {
    EXPECT_EQ(b.total(), r.wall_time);
  }
  EXPECT_EQ(r.aggregate().total(), r.wall_time * 16);
}

TEST_P(PerApp, HitsPlusMissesPlusMergesEqualAccesses) {
  auto a = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*a, mc(16, 4, 8 * 1024));
  EXPECT_EQ(r.totals.read_hits + r.totals.read_misses + r.totals.merges,
            r.totals.reads);
  EXPECT_EQ(r.totals.write_hits + r.totals.write_misses +
                r.totals.upgrade_misses,
            r.totals.writes);
}

TEST_P(PerApp, PerClusterCountersSumToTotals) {
  auto a = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*a, mc(16, 4, 8 * 1024));
  MissCounters sum{};
  for (const auto& c : r.per_cluster) sum += c;
  EXPECT_EQ(sum.reads, r.totals.reads);
  EXPECT_EQ(sum.read_misses, r.totals.read_misses);
  EXPECT_EQ(sum.invalidations, r.totals.invalidations);
}

TEST_P(PerApp, WorksAtSixtyFourProcessors) {
  auto a = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*a, mc(64, 8, 0));
  EXPECT_GT(r.wall_time, 0u);
  EXPECT_EQ(r.per_proc.size(), 64u);
  EXPECT_EQ(r.per_cluster.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, PerApp, ::testing::ValuesIn(app_names()),
                         [](const auto& info) { return info.param; });

TEST(ClusteringShape, OceanLoadStallShrinksWithClusterSize) {
  // The paper's headline Ocean result: near-neighbour communication is
  // captured by the cluster, so load stall falls markedly with cluster size.
  auto sweep = sweep_clusters(
      [] { return make_app("ocean", ProblemScale::Test); }, 0, {1, 8});
  const Cycles load1 = sweep[0].aggregate().load;
  const Cycles load8 = sweep[1].aggregate().load;
  EXPECT_LT(load8 * 2, load1)
      << "8-way clustering must at least halve Ocean's load stall";
}

TEST(ClusteringShape, FftAllToAllBenefitsLittle) {
  auto sweep = sweep_clusters(
      [] { return make_app("fft", ProblemScale::Test); }, 0, {1, 8});
  const double t1 = static_cast<double>(sweep[0].aggregate().total());
  const double t8 = static_cast<double>(sweep[1].aggregate().total());
  EXPECT_GT(t8 / t1, 0.75) << "all-to-all communication is reduced only by "
                              "(P-C)/(P-1); FFT must stay close to flat "
                              "(threshold loose at tiny Test scale)";
}

TEST(ClusteringShape, MergesAppearUnderClustering) {
  auto sweep = sweep_clusters(
      [] { return make_app("lu", ProblemScale::Test); }, 0, {1, 2});
  EXPECT_EQ(sweep[0].totals.merges, 0u);
  EXPECT_GT(sweep[1].totals.merges, 0u)
      << "LU cluster-mates fetch the diagonal block at the same time";
}

}  // namespace
}  // namespace csim
