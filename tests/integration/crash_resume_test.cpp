// The crash-safety acceptance invariant, end to end: a sweep interrupted
// after journaling some rows (one of them torn mid-write) resumes to a CSV
// and sweep digest byte-identical to an uninterrupted run's.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/obs/manifest.hpp"
#include "src/report/experiment.hpp"
#include "src/report/fault_injection.hpp"

namespace csim {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = (fs::temp_directory_path() /
            ("csim_crash_resume_" + tag + "_" +
             std::to_string(static_cast<unsigned long>(::getpid()))))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

std::vector<MachineSpec> sweep_configs() {
  std::vector<MachineSpec> configs;
  for (unsigned ppc : {1u, 2u, 4u}) {
    MachineSpec cfg;
    cfg.num_procs = 8;
    cfg.procs_per_cluster = ppc;
    configs.push_back(cfg);
  }
  return configs;
}

std::string csv_of(const SweepResult& sweep) {
  std::ostringstream os;
  write_csv(os, sweep);
  return os.str();
}

/// Drops the wall_seconds / sim_refs_per_sec columns: they are host-time
/// measurements, so they round-trip bit-exactly through the journal
/// (SecondResumeSimulatesNothing compares them verbatim) but necessarily
/// differ between two *independent* executions of the same sweep.
std::string strip_host_columns(const std::string& csv) {
  std::vector<std::size_t> drop;
  std::string out;
  std::istringstream is(csv);
  std::string line;
  bool header = true;
  while (std::getline(is, line)) {
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= line.size()) {
      const std::size_t comma = line.find(',', start);
      const std::size_t end = comma == std::string::npos ? line.size() : comma;
      fields.push_back(line.substr(start, end - start));
      start = end + 1;
      if (comma == std::string::npos) break;
    }
    if (header) {
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (fields[i] == "wall_seconds" || fields[i] == "sim_refs_per_sec") {
          drop.push_back(i);
        }
      }
      header = false;
    }
    std::string joined;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (std::find(drop.begin(), drop.end(), i) != drop.end()) continue;
      if (!joined.empty()) joined += ',';
      joined += fields[i];
    }
    out += joined;
    out += '\n';
  }
  return out;
}

TEST(CrashResume, InterruptedSweepResumesBitExact) {
  const TempDir tmp("bitexact");
  const std::vector<MachineSpec> configs = sweep_configs();
  auto sims = std::make_shared<std::atomic<int>>(0);
  const auto factory = [sims]() -> std::unique_ptr<Program> {
    ++*sims;
    return make_app("fft", ProblemScale::Test);
  };

  // Reference: the uninterrupted run, no policy at all.
  SweepRequest plain;
  plain.make_app = factory;
  plain.configs = configs;
  const SweepResult reference = run_sweep(plain);
  ASSERT_TRUE(reference.all_ok());
  const std::string reference_csv = csv_of(reference);
  const std::uint64_t reference_digest = obs::sweep_digest(reference.rows);
  const int plain_sims = sims->load();
  EXPECT_EQ(plain_sims, 3);  // no probe without a policy

  // "Crashed" run: row 1's journal record is torn mid-write (the damage a
  // kill would leave without atomic appends) and row 2 dies outright, so
  // only row 0's record survives intact.
  FaultPlan plan;
  FaultSpec torn;
  torn.action = FaultSpec::Action::TornWrite;
  torn.keep_fraction = 0.4;
  plan.add(obs::config_digest(configs[1], "fft", ProblemScale::Test), torn);
  FaultSpec dead;
  dead.action = FaultSpec::Action::Throw;
  dead.error = SimErrorKind::App;  // non-retryable: the row just fails
  plan.add(obs::config_digest(configs[2], "fft", ProblemScale::Test), dead);

  SweepRequest crashed;
  crashed.make_app = factory;
  crashed.configs = configs;
  crashed.policy.journal_dir = tmp.path();
  crashed.policy.faults = &plan;
  const SweepResult partial = run_sweep(crashed);
  EXPECT_TRUE(partial.rows[0].ok);
  EXPECT_TRUE(partial.rows[1].ok);  // the row succeeded; its *record* is torn
  EXPECT_FALSE(partial.rows[2].ok);
  ASSERT_EQ(partial.journal_warnings.size(), 1u);
  EXPECT_NE(partial.journal_warnings[0].find("torn journal write"),
            std::string::npos);

  // Resume: row 0 loads from the journal; the torn record and the dead row
  // re-simulate. Exactly 2 simulations + 1 identity probe.
  const int before_resume = sims->load();
  SweepRequest resumed;
  resumed.make_app = factory;
  resumed.configs = configs;
  resumed.policy.journal_dir = tmp.path();
  resumed.policy.resume = true;
  const SweepResult final_run = run_sweep(resumed);
  ASSERT_TRUE(final_run.all_ok());
  EXPECT_EQ(sims->load(), before_resume + 3);

  ASSERT_EQ(final_run.outcomes.size(), 3u);
  EXPECT_TRUE(final_run.outcomes[0].from_journal);
  EXPECT_FALSE(final_run.outcomes[1].from_journal);
  EXPECT_FALSE(final_run.outcomes[2].from_journal);
  // The torn record was diagnosed, not trusted.
  ASSERT_FALSE(final_run.journal_warnings.empty());
  EXPECT_NE(final_run.journal_warnings[0].find("truncated"),
            std::string::npos);

  // The acceptance invariant: merged CSV (modulo host-time columns) and
  // sweep digest are byte-exact against the uninterrupted run.
  EXPECT_EQ(strip_host_columns(csv_of(final_run)),
            strip_host_columns(reference_csv));
  EXPECT_EQ(obs::sweep_digest(final_run.rows), reference_digest);
}

TEST(CrashResume, SecondResumeSimulatesNothing) {
  const TempDir tmp("idempotent");
  const std::vector<MachineSpec> configs = sweep_configs();
  auto sims = std::make_shared<std::atomic<int>>(0);
  const auto factory = [sims]() -> std::unique_ptr<Program> {
    ++*sims;
    return make_app("fft", ProblemScale::Test);
  };

  SweepRequest req;
  req.make_app = factory;
  req.configs = configs;
  req.policy.journal_dir = tmp.path();
  req.policy.resume = true;
  const SweepResult first = run_sweep(req);
  ASSERT_TRUE(first.all_ok());
  const std::string first_csv = csv_of(first);
  const int after_first = sims->load();

  const SweepResult second = run_sweep(req);
  ASSERT_TRUE(second.all_ok());
  // Only the identity probe ran the factory again.
  EXPECT_EQ(sims->load(), after_first + 1);
  for (const RowOutcome& oc : second.outcomes) {
    EXPECT_TRUE(oc.from_journal);
  }
  EXPECT_EQ(csv_of(second), first_csv);
}

TEST(CrashResume, StaleJournalForOtherAppIsIgnored) {
  const TempDir tmp("staleapp");
  const std::vector<MachineSpec> configs = sweep_configs();

  // Journal a barnes sweep into the directory, then resume an fft sweep
  // from it: the digests differ (app is hashed into the key), so nothing
  // matches and every fft row simulates fresh.
  SweepRequest other;
  other.make_app = [] { return make_app("barnes", ProblemScale::Test); };
  other.configs = {configs[0]};
  other.policy.journal_dir = tmp.path();
  ASSERT_TRUE(run_sweep(other).all_ok());

  SweepRequest req;
  req.make_app = [] { return make_app("fft", ProblemScale::Test); };
  req.configs = configs;
  req.policy.journal_dir = tmp.path();
  req.policy.resume = true;
  const SweepResult sweep = run_sweep(req);
  ASSERT_TRUE(sweep.all_ok());
  for (const RowOutcome& oc : sweep.outcomes) {
    EXPECT_FALSE(oc.from_journal);
  }
}

}  // namespace
}  // namespace csim
