// Cross-organization properties: invariants that must hold under BOTH
// cluster organizations (shared cache and shared main memory).
#include <gtest/gtest.h>

#include <tuple>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"

namespace csim {
namespace {

using Param = std::tuple<std::string, ClusterStyle>;

MachineSpec mc(ClusterStyle style, unsigned ppc, std::size_t cache) {
  MachineSpec c;
  c.num_procs = 16;
  c.procs_per_cluster = ppc;
  c.cluster_style = style;
  c.cache.per_proc_bytes = cache;
  return c;
}

class OrgProps : public ::testing::TestWithParam<Param> {};

TEST_P(OrgProps, RunsVerifiesAndConserves) {
  const auto& [app_name, style] = GetParam();
  auto app = make_app(app_name, ProblemScale::Test);
  const SimResult r = simulate(*app, mc(style, 4, 8 * 1024));
  EXPECT_GT(r.wall_time, 0u);
  for (const auto& b : r.per_proc) EXPECT_EQ(b.total(), r.wall_time);
  // Every read is a first-level hit, a merge, a within-cluster supply
  // (snoop / cluster memory; shared-memory organization only), or a miss.
  EXPECT_EQ(r.totals.read_hits + r.totals.read_misses + r.totals.merges +
                r.totals.snoop_transfers + r.totals.cluster_memory_hits,
            r.totals.reads);
  EXPECT_EQ(r.totals.write_hits + r.totals.write_misses +
                r.totals.upgrade_misses,
            r.totals.writes);
}

TEST_P(OrgProps, Deterministic) {
  const auto& [app_name, style] = GetParam();
  auto a = make_app(app_name, ProblemScale::Test);
  auto b = make_app(app_name, ProblemScale::Test);
  const SimResult r1 = simulate(*a, mc(style, 4, 8 * 1024));
  const SimResult r2 = simulate(*b, mc(style, 4, 8 * 1024));
  EXPECT_EQ(r1.wall_time, r2.wall_time);
  EXPECT_EQ(r1.totals.read_misses, r2.totals.read_misses);
}

TEST_P(OrgProps, ClusteringDoesNotExplodeTime) {
  // Neither organization should make an application more than ~15% slower
  // at 8-way clustering with infinite caches (no interference possible).
  const auto& [app_name, style] = GetParam();
  auto a = make_app(app_name, ProblemScale::Test);
  auto b = make_app(app_name, ProblemScale::Test);
  const SimResult r1 = simulate(*a, mc(style, 1, 0));
  const SimResult r8 = simulate(*b, mc(style, 8, 0));
  EXPECT_LT(static_cast<double>(r8.wall_time),
            1.15 * static_cast<double>(r1.wall_time));
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (const auto& n : app_names()) {
    out.emplace_back(n, ClusterStyle::SharedCache);
    out.emplace_back(n, ClusterStyle::SharedMemory);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AppsByOrg, OrgProps, ::testing::ValuesIn(all_params()),
    [](const auto& info) {
      return std::get<0>(info.param) +
             (std::get<1>(info.param) == ClusterStyle::SharedMemory
                  ? "_sharedmem"
                  : "_sharedcache");
    });

TEST(OrgComparison, AttractionMemoryBeatsThrashingPrivateCaches) {
  // With tiny private caches the shared-memory organization converts
  // capacity re-fetches into cheap cluster-memory hits; it must beat the
  // same cache budget spent on an (equally tiny) shared cache for a
  // capacity-bound app.
  auto a = make_app("barnes", ProblemScale::Test);
  auto b = make_app("barnes", ProblemScale::Test);
  const SimResult sc = simulate(*a, mc(ClusterStyle::SharedCache, 4, 2 * 1024));
  const SimResult sm = simulate(*b, mc(ClusterStyle::SharedMemory, 4, 2 * 1024));
  EXPECT_LT(sm.wall_time, sc.wall_time);
  EXPECT_GT(sm.totals.cluster_memory_hits + sm.totals.snoop_transfers, 0u);
}

}  // namespace
}  // namespace csim
