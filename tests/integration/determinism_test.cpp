// Determinism regression suite.
//
// The simulator's contract is that a (program, configuration) pair produces
// bit-identical results on every run: same wall time, same event count, same
// miss taxonomy, same per-processor and per-cluster breakdowns. The hot-path
// machinery (allocation-free event scheduling, flat-hash coherence state, the
// per-processor MRU line filter) must never perturb these — a perf change
// that shifts any counter is a correctness bug, not an optimization.
//
// Two layers of defence:
//  1. Every registered application runs twice under both cluster
//     organizations and the two SimResults must match field for field.
//  2. Golden-value pins for one application (fft) freeze absolute numbers at
//     the tracked baseline configuration (64 processors, 16 KB caches, test
//     scale), so a change that is self-consistent but alters behaviour —
//     e.g. a reordered event tie-break — still fails loudly. If a pin fails
//     after an *intentional* semantic change, re-derive the constants with a
//     fresh run and say so in the commit message.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"

namespace csim {
namespace {

MachineSpec baseline(ClusterStyle style, unsigned ppc) {
  MachineSpec c;
  c.num_procs = 64;
  c.procs_per_cluster = ppc;
  c.cluster_style = style;
  c.cache.per_proc_bytes = 16 * 1024;
  return c;
}

using Param = std::tuple<std::string, ClusterStyle>;

class Determinism : public ::testing::TestWithParam<Param> {};

TEST_P(Determinism, RepeatedRunsAreBitIdentical) {
  const auto& [app_name, style] = GetParam();
  auto a = make_app(app_name, ProblemScale::Test);
  auto b = make_app(app_name, ProblemScale::Test);
  const SimResult r1 = simulate(*a, baseline(style, 4));
  const SimResult r2 = simulate(*b, baseline(style, 4));

  EXPECT_EQ(r1.wall_time, r2.wall_time);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_TRUE(r1.totals == r2.totals);
  EXPECT_TRUE(r1.per_proc == r2.per_proc);
  EXPECT_TRUE(r1.per_cluster == r2.per_cluster);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [app_name, style] = info.param;
  return app_name + "_" +
         (style == ClusterStyle::SharedCache ? "shared_cache"
                                             : "shared_memory");
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, Determinism,
    ::testing::Combine(::testing::ValuesIn(app_names()),
                       ::testing::Values(ClusterStyle::SharedCache,
                                         ClusterStyle::SharedMemory)),
    param_name);

// --- Golden pins (fft, test scale, 64 procs, 16 KB caches) ---------------

TEST(DeterminismGolden, FftSharedCacheOneProcClusters) {
  auto app = make_app("fft", ProblemScale::Test);
  const SimResult r = simulate(*app, baseline(ClusterStyle::SharedCache, 1));
  EXPECT_EQ(r.wall_time, 15204u);
  EXPECT_EQ(r.totals.reads, 15872u);
  EXPECT_EQ(r.totals.writes, 15872u);
  EXPECT_EQ(r.totals.read_hits, 12864u);
  EXPECT_EQ(r.totals.write_hits, 15104u);
  EXPECT_EQ(r.totals.read_misses, 3008u);
  EXPECT_EQ(r.totals.write_misses, 480u);
  EXPECT_EQ(r.totals.upgrade_misses, 288u);
  EXPECT_EQ(r.totals.merges, 0u);
  EXPECT_EQ(r.totals.cold_misses, 512u);
  EXPECT_EQ(r.totals.invalidations, 1984u);
  ASSERT_EQ(r.totals.by_class.size(), 4u);
  EXPECT_EQ(r.totals.by_class[0], 116u);
  EXPECT_EQ(r.totals.by_class[1], 32u);
  EXPECT_EQ(r.totals.by_class[2], 2924u);
  EXPECT_EQ(r.totals.by_class[3], 416u);
}

TEST(DeterminismGolden, FftSharedMemoryEightProcClusters) {
  auto app = make_app("fft", ProblemScale::Test);
  const SimResult r = simulate(*app, baseline(ClusterStyle::SharedMemory, 8));
  EXPECT_EQ(r.wall_time, 12233u);
  EXPECT_EQ(r.totals.reads, 15872u);
  EXPECT_EQ(r.totals.writes, 15872u);
  EXPECT_EQ(r.totals.read_hits, 12864u);
  EXPECT_EQ(r.totals.write_hits, 15168u);
  EXPECT_EQ(r.totals.read_misses, 640u);
  EXPECT_EQ(r.totals.write_misses, 448u);
  EXPECT_EQ(r.totals.upgrade_misses, 256u);
  EXPECT_EQ(r.totals.merges, 1812u);
  EXPECT_EQ(r.totals.cold_misses, 512u);
  EXPECT_EQ(r.totals.invalidations, 384u);
  EXPECT_EQ(r.totals.snoop_transfers, 556u);
  EXPECT_EQ(r.totals.cluster_memory_hits, 0u);
  EXPECT_EQ(r.totals.bus_invalidations, 748u);
}

}  // namespace
}  // namespace csim
