// Parallel-engine determinism: the conservative window engine
// (src/core/par_engine.cpp) must produce results that are a pure function
// of the configuration — never of the worker count, the thread schedule,
// or the host. Every row of the golden reference frame (all apps at test
// scale, both organizations, three cluster sizes at 16 KB plus the
// infinite-cache column) is run at --par 1 / 2 / 4 / 8 and its
// obs::result_digest compared against the committed fixture
// tests/integration/golden_digests_par.txt — bit-identical counters,
// buckets, and per-cluster/per-processor breakdowns at every worker count.
//
// The parallel digests are a separate fixture from golden_digests.txt
// because windowed execution is a (deterministic) model change, not a mere
// reordering: an inter-cluster operation issued mid-window replays at the
// window boundary against boundary state, so state-dependent latencies can
// legitimately differ from the sequential interleaving. That is exactly why
// the horizon is hashed into config_digest while the worker count — pure
// execution detail — is not.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"
#include "src/obs/manifest.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

std::string fixture_path() {
  return std::string(CSIM_SOURCE_DIR) + "/tests/integration/golden_digests_par.txt";
}

/// "app style ppc cache" -> committed digest hex (generated at --par 4).
std::map<std::string, std::string> load_fixture() {
  std::ifstream in(fixture_path());
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << fixture_path();
  std::map<std::string, std::string> golden;
  std::string app, style, digest;
  unsigned ppc = 0;
  std::size_t cache = 0;
  while (in >> app >> style >> ppc >> cache >> digest) {
    std::ostringstream key;
    key << app << ' ' << style << ' ' << ppc << ' ' << cache;
    golden[key.str()] = digest;
  }
  return golden;
}

MachineSpec frame_config(ClusterStyle style, unsigned ppc, std::size_t cache,
                         unsigned workers) {
  return MachineSpecBuilder{}
      .procs(64)
      .procs_per_cluster(ppc)
      .style(style)
      .cache_bytes(cache)
      .parallel({workers, 0})
      .build();
}

class ParDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParDeterminism, GoldenFrameDigestsIdenticalAtEveryWorkerCount) {
  const unsigned workers = GetParam();
  const auto golden = load_fixture();
  ASSERT_EQ(golden.size(), 63u) << "fixture frame changed unexpectedly";

  unsigned checked = 0;
  for (const std::string& name : app_names()) {
    SweepRequest req;
    req.make_app = [&name] { return make_app(name, ProblemScale::Test); };
    struct Key {
      const char* style_name;
      ClusterStyle style;
      unsigned ppc;
      std::size_t cache;
    };
    std::vector<Key> keys;
    for (unsigned ppc : {1u, 4u, 8u}) {
      keys.push_back({"shared_cache", ClusterStyle::SharedCache, ppc, 16384});
      keys.push_back({"shared_memory", ClusterStyle::SharedMemory, ppc, 16384});
    }
    keys.push_back({"shared_cache", ClusterStyle::SharedCache, 4, 0});
    for (const Key& k : keys) {
      req.configs.push_back(frame_config(k.style, k.ppc, k.cache, workers));
    }

    const SweepResult res = run_sweep(req);
    ASSERT_EQ(res.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const Key& k = keys[i];
      ASSERT_TRUE(res.rows[i].ok) << name << ": " << res.rows[i].error;
      std::ostringstream key;
      key << name << ' ' << k.style_name << ' ' << k.ppc << ' ' << k.cache;
      const auto it = golden.find(key.str());
      ASSERT_NE(it, golden.end()) << "no golden digest for " << key.str();
      EXPECT_EQ(obs::digest_hex(obs::result_digest(res.rows[i])), it->second)
          << "parallel (" << workers << " workers) drift at " << key.str();
      ++checked;
    }
  }
  EXPECT_EQ(checked, golden.size());
}

INSTANTIATE_TEST_SUITE_P(Workers, ParDeterminism,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "par" + std::to_string(info.param);
                         });

SimResult run_once(unsigned workers) {
  const MachineSpec cfg =
      frame_config(ClusterStyle::SharedCache, 8, 16384, workers);
  auto prog = make_app("ocean", ProblemScale::Test);
  return Simulator(cfg).run(*prog);
}

/// Full-result equality, not just the digest: catches drift in fields the
/// digest does not fold (finish times feed sync buckets, so compare those
/// too via the hashed breakdowns plus the headline counters).
void expect_identical(const SimResult& a, const SimResult& b,
                      const char* what) {
  EXPECT_EQ(a.wall_time, b.wall_time) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(obs::result_digest(a), obs::result_digest(b)) << what;
}

TEST(ParDeterminism, RepeatedRunsAreByteIdentical) {
  // Thread-schedule perturbation: the same config run three times must not
  // wobble, whatever the OS does to the worker threads in between.
  const SimResult r1 = run_once(4);
  const SimResult r2 = run_once(4);
  const SimResult r3 = run_once(4);
  expect_identical(r1, r2, "repeat 2 of --par 4");
  expect_identical(r1, r3, "repeat 3 of --par 4");
}

TEST(ParDeterminism, OddWorkerCountsMatchToo) {
  // Partition-to-worker assignment varies with the worker count (8 clusters
  // over 3 workers splits unevenly); the drain order must not care.
  expect_identical(run_once(1), run_once(3), "--par 1 vs --par 3");
  expect_identical(run_once(3), run_once(7), "--par 3 vs --par 7");
}

TEST(ParDeterminism, WorkerCountBeyondClustersIsClamped) {
  // 8 clusters; asking for 64 workers must clamp, not crash or drift.
  expect_identical(run_once(8), run_once(64), "--par 8 vs --par 64");
}

}  // namespace
}  // namespace csim
