// Interval sampling x cluster-parallel execution (src/core/par_engine.cpp,
// "ParSampling"): warming is sharded per cluster — cluster-local references
// warm through MemorySystem::local_read / local_write inside the window,
// cross-cluster ones defer as non-blocking warm entries and commit in drain
// order at the epoch boundary — and the coordinator flips regimes at
// quiescent boundaries driven purely by retired-reference counts. The
// contract under test: the sampled schedule is a pure function of the
// configuration (worker-count invariant), the exactness guarantees of
// sequential sampling carry over (reference counts, cold misses), and
// warm-state checkpoints round-trip across worker counts but never leak
// across engines or horizon widths (warm_config_digest).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "src/apps/app.hpp"
#include "src/core/machine.hpp"
#include "src/core/simulator.hpp"
#include "src/obs/manifest.hpp"

namespace csim {
namespace {

MachineSpec par_sampled(unsigned workers, std::string ckpt_dir = {}) {
  return MachineSpecBuilder{}
      .procs(16)
      .procs_per_cluster(4)
      .cache_kb(4)
      .sample(4096, 4096, 16384)
      .checkpoint_dir(std::move(ckpt_dir))
      .parallel({workers, 0})
      .build();
}

SimResult run(const std::string& app, const MachineSpec& cfg) {
  const std::unique_ptr<Program> prog = make_app(app, ProblemScale::Test);
  return simulate(*prog, cfg);
}

TEST(ParSampling, SampledRunsAreWorkerCountInvariant) {
  const SimResult base = run("ocean", par_sampled(1));
  ASSERT_TRUE(base.ok);
  EXPECT_TRUE(base.sampled);
  EXPECT_GT(base.coverage, 0.0);
  const std::uint64_t base_digest = obs::result_digest(base);
  for (const unsigned workers : {2u, 4u, 8u}) {
    const SimResult r = run("ocean", par_sampled(workers));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(obs::result_digest(r), base_digest)
        << "sampled digest diverged at " << workers << " workers";
    EXPECT_EQ(r.detailed_refs, base.detailed_refs);
    EXPECT_EQ(r.wall_time, base.wall_time);
  }
}

TEST(ParSampling, ReferenceCountsAndColdMissesStayExact) {
  // fft's miss behaviour is timing-independent at this configuration (the
  // same property the sequential exactness test pins), so sharded warming
  // plus deferred warm commits must land the whole taxonomy exactly on the
  // unsampled parallel run.
  MachineSpec plain = par_sampled(4);
  plain.sampling = SamplingSpec{};
  const SimResult full = run("fft", plain);
  const SimResult sampled = run("fft", par_sampled(4));
  ASSERT_TRUE(full.ok);
  ASSERT_TRUE(sampled.ok);
  EXPECT_EQ(sampled.totals.reads, full.totals.reads);
  EXPECT_EQ(sampled.totals.writes, full.totals.writes);
  EXPECT_EQ(sampled.totals.cold_misses, full.totals.cold_misses);
  EXPECT_EQ(sampled.totals.read_misses, full.totals.read_misses);
  EXPECT_EQ(sampled.totals.write_misses, full.totals.write_misses);
  EXPECT_EQ(sampled.totals.upgrade_misses, full.totals.upgrade_misses);
}

TEST(ParSampling, CheckpointRoundTripsAcrossWorkerCounts) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("csim_par_ckpt_" +
        std::to_string(static_cast<unsigned long>(::getpid()))))
          .string();
  std::filesystem::remove_all(dir);
  // First run warms in-process and saves; the proc_now clocks it records
  // are worker-count independent, so a restore at any other --par N must
  // replay to the same boundary and produce identical results.
  const SimResult warm = run("ocean", par_sampled(2, dir));
  ASSERT_TRUE(warm.ok);
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    files += e.path().extension() == ".csc";
  }
  EXPECT_EQ(files, 1u);
  const SimResult restored = run("ocean", par_sampled(8, dir));
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(restored.ok);
  EXPECT_EQ(obs::result_digest(restored), obs::result_digest(warm));
}

TEST(ParSampling, DigestsSeparateEnginesAndHorizons) {
  const MachineSpec par = par_sampled(4);
  MachineSpec seq = par;
  seq.parallel = ParallelSpec{};
  MachineSpec wide = par;
  wide.parallel.horizon_override = 4096;
  // Sampled sequential and sampled parallel are different experiments
  // (windowed execution is a model change), and so are two horizon widths:
  // both the config digest and the checkpoint key must separate them.
  const auto cfg_key = [](const MachineSpec& cfg) {
    return obs::config_digest(cfg, "ocean", ProblemScale::Test);
  };
  const auto warm_key = [](const MachineSpec& cfg) {
    return obs::warm_config_digest(cfg, "ocean", ProblemScale::Test);
  };
  EXPECT_NE(cfg_key(par), cfg_key(seq));
  EXPECT_NE(cfg_key(par), cfg_key(wide));
  EXPECT_NE(warm_key(par), warm_key(seq));
  EXPECT_NE(warm_key(par), warm_key(wide));
  // The worker count is pure execution detail: neither key may include it.
  MachineSpec par8 = par;
  par8.parallel.workers = 8;
  EXPECT_EQ(cfg_key(par), cfg_key(par8));
  EXPECT_EQ(warm_key(par), warm_key(par8));
}

}  // namespace
}  // namespace csim
