// The sweep service core (src/report/service.hpp): request parsing rejects,
// the two-tier result cache, and the full request/response session — all
// in-process, no sockets (tools/csim_serve adds only plumbing).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/error.hpp"
#include "src/obs/manifest.hpp"
#include "src/report/json.hpp"
#include "src/report/journal.hpp"
#include "src/report/service.hpp"

namespace csim {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = (fs::temp_directory_path() /
            ("csim_service_test_" + tag + "_" +
             std::to_string(static_cast<unsigned long>(::getpid()))))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

// --- request parsing --------------------------------------------------------

serve::ServiceRequest parse(const std::string& text) {
  return serve::parse_service_request(json::parse(text));
}

TEST(ServiceRequestParse, DefaultsMatchCsimCli) {
  const serve::ServiceRequest req = parse("{}");
  EXPECT_EQ(req.app, "ocean");
  EXPECT_EQ(req.scale, ProblemScale::Default);
  EXPECT_EQ(req.procs, 64u);
  EXPECT_EQ(req.ppcs, (std::vector<unsigned>{1, 2, 4, 8}));
  EXPECT_EQ(req.cache_kb, 0u);
  EXPECT_EQ(req.line_bytes, 64u);
  EXPECT_EQ(req.style, ClusterStyle::SharedCache);
  EXPECT_EQ(req.quantum, 32u);
  EXPECT_FALSE(req.hit_costs);
}

TEST(ServiceRequestParse, ParsesEveryField) {
  const serve::ServiceRequest req = parse(
      "{\"id\": \"r1\", \"app\": \"fft\", \"scale\": \"test\","
      " \"procs\": 16, \"ppc\": [2, 8], \"cache_kb\": 4, \"assoc\": 2,"
      " \"line_bytes\": 32, \"style\": \"memory\", \"quantum\": 64,"
      " \"hit_costs\": true, \"csv_out\": \"out.csv\"}");
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.app, "fft");
  EXPECT_EQ(req.scale, ProblemScale::Test);
  EXPECT_EQ(req.procs, 16u);
  EXPECT_EQ(req.ppcs, (std::vector<unsigned>{2, 8}));
  EXPECT_EQ(req.cache_kb, 4u);
  EXPECT_EQ(req.assoc, 2u);
  EXPECT_EQ(req.line_bytes, 32u);
  EXPECT_EQ(req.style, ClusterStyle::SharedMemory);
  EXPECT_EQ(req.quantum, 64u);
  EXPECT_TRUE(req.hit_costs);
  EXPECT_EQ(req.csv_out, "out.csv");
}

TEST(ServiceRequestParse, RejectsBadRequests) {
  EXPECT_THROW((void)parse("{\"app\": \"no_such_app\"}"), ConfigError);
  EXPECT_THROW((void)parse("{\"scale\": \"huge\"}"), ConfigError);
  EXPECT_THROW((void)parse("{\"procs\": -4}"), ConfigError);
  EXPECT_THROW((void)parse("{\"procs\": 2.5}"), ConfigError);
  EXPECT_THROW((void)parse("{\"procs\": 0}"), ConfigError);
  EXPECT_THROW((void)parse("{\"ppc\": 4}"), ConfigError);       // not an array
  EXPECT_THROW((void)parse("{\"ppc\": []}"), ConfigError);      // empty
  EXPECT_THROW((void)parse("{\"ppc\": [-1]}"), ConfigError);    // negative
  EXPECT_THROW((void)parse("{\"style\": \"hybrid\"}"), ConfigError);
  EXPECT_THROW((void)parse("{\"typo_field\": 1}"), ConfigError);
  EXPECT_THROW((void)parse("[1, 2]"), ConfigError);  // not an object
}

TEST(ServiceRequestParse, ParallelFieldsReachTheRowSpecs) {
  const serve::ServiceRequest req =
      parse("{\"app\": \"fft\", \"parallel\": 4, \"par_horizon\": 60}");
  EXPECT_EQ(req.parallel.workers, 4u);
  EXPECT_EQ(req.parallel.horizon_override, 60u);
  for (const MachineSpec& cfg : serve::configs_from_request(req)) {
    EXPECT_EQ(cfg.parallel.workers, 4u);
    EXPECT_EQ(cfg.parallel.horizon_override, 60u);
  }
  // Omitted = sequential engine, exactly as before the field existed.
  EXPECT_FALSE(parse("{}").parallel.enabled());
  // par_horizon without parallel is a contradiction, not a silent no-op.
  EXPECT_THROW((void)parse("{\"par_horizon\": 60}"), ConfigError);
  EXPECT_THROW((void)parse("{\"parallel\": -1}"), ConfigError);
}

// --- result cache -----------------------------------------------------------

SimResult fake_result(unsigned ppc) {
  SimResult r;
  r.config.num_procs = 16;
  r.config.procs_per_cluster = ppc;
  r.app_name = "fft";
  r.scale = ProblemScale::Test;
  r.wall_time = 1000 + ppc;
  r.events = 42;
  r.host_seconds = 0.5;
  r.totals.reads = 10;
  r.per_proc.resize(16);
  r.per_cluster.resize(16 / ppc);
  return r;
}

TEST(ResultCache, MemoryTierRoundTrips) {
  serve::ResultCache cache("");  // memory only
  const SimResult r = fake_result(4);
  const std::uint64_t d = obs::config_digest(r.config, r.app_name, r.scale);
  EXPECT_FALSE(
      cache.lookup(d, r.config, "fft", ProblemScale::Test, nullptr));
  cache.insert(r, 2);
  const auto hit = cache.lookup(d, r.config, "fft", ProblemScale::Test,
                                nullptr);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tier, serve::ResultCache::Tier::Memory);
  EXPECT_EQ(hit->attempts, 2u);
  EXPECT_EQ(hit->result.wall_time, r.wall_time);
  EXPECT_EQ(obs::result_digest(hit->result), obs::result_digest(r));
}

TEST(ResultCache, FailedRowsAreNeverCached) {
  serve::ResultCache cache("");
  SimResult r = fake_result(4);
  r.ok = false;
  cache.insert(r, 1);
  EXPECT_EQ(cache.memory_entries(), 0u);
}

TEST(ResultCache, JournalTierProbesAndPromotes) {
  const TempDir tmp("journal_tier");
  const SimResult r = fake_result(2);
  const std::uint64_t d = obs::config_digest(r.config, r.app_name, r.scale);
  append_journal_record(tmp.path(), journal_record_from_result(r, 3));

  serve::ResultCache cache(tmp.path());
  std::vector<std::string> warnings;
  const auto cold = cache.lookup(d, r.config, "fft", ProblemScale::Test,
                                 &warnings);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(cold->tier, serve::ResultCache::Tier::Journal);
  EXPECT_EQ(cold->attempts, 3u);
  EXPECT_TRUE(warnings.empty());
  // Promoted: the second lookup is a memory hit.
  const auto warm = cache.lookup(d, r.config, "fft", ProblemScale::Test,
                                 &warnings);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->tier, serve::ResultCache::Tier::Memory);
}

TEST(ResultCache, EmptyJournalFileIsAWarnedMiss) {
  const TempDir tmp("empty_file");
  const SimResult r = fake_result(2);
  const std::uint64_t d = obs::config_digest(r.config, r.app_name, r.scale);
  { std::ofstream os(tmp.path() + "/" + obs::digest_hex(d) + ".csj"); }
  serve::ResultCache cache(tmp.path());
  std::vector<std::string> warnings;
  EXPECT_FALSE(
      cache.lookup(d, r.config, "fft", ProblemScale::Test, &warnings));
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("empty record file"), std::string::npos);
}

TEST(ResultCache, CacheMaxEvictsLeastRecentlyUsed) {
  serve::ResultCache cache("", 2);  // memory only, two entries max
  EXPECT_EQ(cache.max_entries(), 2u);
  const SimResult r1 = fake_result(1);
  const SimResult r2 = fake_result(2);
  const SimResult r4 = fake_result(4);
  const auto digest = [](const SimResult& r) {
    return obs::config_digest(r.config, r.app_name, r.scale);
  };
  cache.insert(r1, 1);
  cache.insert(r2, 1);
  EXPECT_EQ(cache.memory_entries(), 2u);
  // Touch r1 so r2 is the LRU entry, then insert a third row.
  EXPECT_TRUE(cache.lookup(digest(r1), r1.config, "fft", ProblemScale::Test,
                           nullptr));
  cache.insert(r4, 1);
  EXPECT_EQ(cache.memory_entries(), 2u);
  EXPECT_TRUE(cache.lookup(digest(r1), r1.config, "fft", ProblemScale::Test,
                           nullptr));
  EXPECT_TRUE(cache.lookup(digest(r4), r4.config, "fft", ProblemScale::Test,
                           nullptr));
  EXPECT_FALSE(cache.lookup(digest(r2), r2.config, "fft", ProblemScale::Test,
                            nullptr));  // evicted
}

TEST(ResultCache, EvictedRowsStillServedFromJournal) {
  // With a journal directory behind the memory tier, the LRU bound trades a
  // file probe, never a re-simulation: the evicted row comes back as a
  // journal hit and is re-promoted (evicting the new LRU entry in turn).
  const TempDir tmp("evict_journal");
  const SimResult r1 = fake_result(1);
  const SimResult r2 = fake_result(2);
  append_journal_record(tmp.path(), journal_record_from_result(r1, 1));
  append_journal_record(tmp.path(), journal_record_from_result(r2, 1));
  serve::ResultCache cache(tmp.path(), 1);
  const auto digest = [](const SimResult& r) {
    return obs::config_digest(r.config, r.app_name, r.scale);
  };
  std::vector<std::string> warnings;
  const auto h1 = cache.lookup(digest(r1), r1.config, "fft",
                               ProblemScale::Test, &warnings);
  ASSERT_TRUE(h1.has_value());
  EXPECT_EQ(h1->tier, serve::ResultCache::Tier::Journal);
  const auto h2 = cache.lookup(digest(r2), r2.config, "fft",
                               ProblemScale::Test, &warnings);
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(cache.memory_entries(), 1u);  // r1 was evicted for r2
  const auto h1_again = cache.lookup(digest(r1), r1.config, "fft",
                                     ProblemScale::Test, &warnings);
  ASSERT_TRUE(h1_again.has_value());
  EXPECT_EQ(h1_again->tier, serve::ResultCache::Tier::Journal);
  EXPECT_TRUE(warnings.empty());
  EXPECT_EQ(obs::result_digest(h1_again->result), obs::result_digest(r1));
}

TEST(ResultCache, UnboundedByDefault) {
  serve::ResultCache cache("");
  for (unsigned ppc : {1u, 2u, 4u, 8u}) cache.insert(fake_result(ppc), 1);
  EXPECT_EQ(cache.max_entries(), 0u);
  EXPECT_EQ(cache.memory_entries(), 4u);
}

// --- service session --------------------------------------------------------

/// Runs one line through a session, collecting the emitted response lines.
std::vector<std::string> run_line(serve::ServiceSession& session,
                                  const std::string& line,
                                  serve::LineAction* action = nullptr) {
  std::vector<std::string> out;
  const serve::LineAction a = session.handle_line(
      line, [&](const std::string& l) { out.push_back(l); });
  if (action != nullptr) *action = a;
  return out;
}

json::Value parse_line(const std::string& line) { return json::parse(line); }

std::string line_type(const json::Value& v) {
  const json::Value* t = v.find("type");
  return t != nullptr && t->is_string() ? t->as_string() : "";
}

constexpr const char* kSweep =
    "{\"id\": \"t\", \"app\": \"fft\", \"scale\": \"test\", \"procs\": 16,"
    " \"ppc\": [1, 2, 4], \"cache_kb\": 4}";

TEST(ServiceSession, SweepThenRepeatIsAllCacheHits) {
  const TempDir tmp("session");
  serve::ServiceSession session({tmp.path() + "/jdir", {}});

  const std::vector<std::string> first = run_line(session, kSweep);
  ASSERT_GE(first.size(), 4u);  // 3 rows + done
  std::size_t rows = 0;
  for (const std::string& l : first) {
    const json::Value v = parse_line(l);
    if (line_type(v) == "row") {
      ++rows;
      EXPECT_EQ(v.find("from_cache")->as_bool(), false);
      EXPECT_EQ(v.find("status")->as_string(), "ok");
      EXPECT_TRUE(v.find("result_digest") != nullptr);
    }
  }
  EXPECT_EQ(rows, 3u);
  const json::Value done = parse_line(first.back());
  ASSERT_EQ(line_type(done), "done");
  EXPECT_EQ(done.find("cache_hits")->as_number(), 0);
  EXPECT_EQ(done.find("failures")->as_number(), 0);
  EXPECT_EQ(done.find("rows_in_shard")->as_number(), 3);

  // Same request again: served entirely from the memory tier, same digests.
  const std::vector<std::string> second = run_line(session, kSweep);
  for (const std::string& l : second) {
    const json::Value v = parse_line(l);
    if (line_type(v) == "row") {
      EXPECT_EQ(v.find("from_cache")->as_bool(), true);
      EXPECT_EQ(v.find("tier")->as_string(), "memory");
    }
  }
  const json::Value done2 = parse_line(second.back());
  EXPECT_EQ(done2.find("cache_hits")->as_number(), 3);
  EXPECT_EQ(done2.find("memory_hits")->as_number(), 3);
  EXPECT_EQ(done2.find("sweep_digest")->as_string(),
            done.find("sweep_digest")->as_string());

  // A fresh session over the same journal dir: journal-tier hits.
  serve::ServiceSession fresh({tmp.path() + "/jdir", {}});
  const std::vector<std::string> third = run_line(fresh, kSweep);
  for (const std::string& l : third) {
    const json::Value v = parse_line(l);
    if (line_type(v) == "row") {
      EXPECT_EQ(v.find("from_cache")->as_bool(), true);
      EXPECT_EQ(v.find("tier")->as_string(), "journal");
    }
  }
  EXPECT_EQ(parse_line(third.back()).find("journal_hits")->as_number(), 3);
}

TEST(ServiceSession, CsvArtifactIsByteIdenticalAcrossCacheTiers) {
  const TempDir tmp("csv");
  const std::string req = std::string(kSweep).insert(
      1, "\"csv_out\": \"" + tmp.path() + "/out1.csv\", ");
  const std::string req2 = std::string(kSweep).insert(
      1, "\"csv_out\": \"" + tmp.path() + "/out2.csv\", ");
  serve::ServiceSession session({tmp.path() + "/jdir", {}});
  run_line(session, req);   // simulated
  run_line(session, req2);  // all cache hits
  const auto slurp = [](const std::string& p) {
    std::ifstream is(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  };
  const std::string a = slurp(tmp.path() + "/out1.csv");
  const std::string b = slurp(tmp.path() + "/out2.csv");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ServiceSession, RowLinesStreamBeforeDone) {
  serve::ServiceSession session({"", {}});
  const std::vector<std::string> out = run_line(session, kSweep);
  ASSERT_FALSE(out.empty());
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_EQ(line_type(parse_line(out[i])), "row");
  }
  EXPECT_EQ(line_type(parse_line(out.back())), "done");
}

TEST(ServiceSession, PingShutdownAndBlankFrames) {
  serve::ServiceSession session({"", {}});
  serve::LineAction action{};
  EXPECT_TRUE(run_line(session, "", &action).empty());
  EXPECT_EQ(action, serve::LineAction::Continue);
  EXPECT_TRUE(run_line(session, "   \t", &action).empty());

  const std::vector<std::string> pong =
      run_line(session, "{\"type\": \"ping\", \"id\": \"p\"}", &action);
  ASSERT_EQ(pong.size(), 1u);
  EXPECT_EQ(line_type(parse_line(pong[0])), "pong");
  EXPECT_EQ(parse_line(pong[0]).find("id")->as_string(), "p");
  EXPECT_EQ(action, serve::LineAction::Continue);

  const std::vector<std::string> bye =
      run_line(session, "{\"type\": \"shutdown\"}", &action);
  ASSERT_EQ(bye.size(), 1u);
  EXPECT_EQ(line_type(parse_line(bye[0])), "bye");
  EXPECT_EQ(action, serve::LineAction::Shutdown);
}

TEST(ServiceSession, BadInputIsAnErrorLineAndTheSessionSurvives) {
  serve::ServiceSession session({"", {}});
  for (const char* bad :
       {"{not json", "{\"app\": \"no_such_app\"}", "{\"procs\": -1}",
        "{\"type\": \"frobnicate\"}", "\"just a string\""}) {
    serve::LineAction action{};
    const std::vector<std::string> out = run_line(session, bad, &action);
    ASSERT_EQ(out.size(), 1u) << bad;
    EXPECT_EQ(line_type(parse_line(out[0])), "error") << bad;
    EXPECT_EQ(action, serve::LineAction::Continue);
  }
  // Still serves real requests afterwards.
  const std::vector<std::string> ok = run_line(session, kSweep);
  EXPECT_EQ(line_type(parse_line(ok.back())), "done");
}

TEST(ServiceSession, FailedRowsAreReportedNotCached) {
  serve::ServiceSession session({"", {}});
  // ppc 3 does not divide 16 procs: the row fails inside run_sweep.
  const std::vector<std::string> out = run_line(
      session,
      "{\"app\": \"fft\", \"scale\": \"test\", \"procs\": 16, \"ppc\": [3]}");
  const json::Value row = parse_line(out[0]);
  ASSERT_EQ(line_type(row), "row");
  EXPECT_EQ(row.find("status")->as_string(), "failed");
  EXPECT_TRUE(row.find("error_kind") != nullptr);
  EXPECT_EQ(parse_line(out.back()).find("failures")->as_number(), 1);
  EXPECT_EQ(session.cache().memory_entries(), 0u);
}

TEST(ServiceSession, ShardedSessionServesOnlyItsRows) {
  serve::ServiceSession shard0({"", serve::parse_shard("0/2")});
  serve::ServiceSession shard1({"", serve::parse_shard("1/2")});
  const std::vector<std::string> a = run_line(shard0, kSweep);
  const std::vector<std::string> b = run_line(shard1, kSweep);
  const json::Value da = parse_line(a.back());
  const json::Value db = parse_line(b.back());
  EXPECT_EQ(da.find("rows_total")->as_number(), 3);
  EXPECT_EQ(db.find("rows_total")->as_number(), 3);
  EXPECT_EQ(da.find("rows_in_shard")->as_number() +
                db.find("rows_in_shard")->as_number(),
            3);
  EXPECT_EQ(da.find("shard")->as_string(), "0/2");
  // Global indices are disjoint across the two shards.
  std::vector<double> indices;
  for (const auto& lines : {a, b}) {
    for (const std::string& l : lines) {
      const json::Value v = parse_line(l);
      if (line_type(v) == "row") {
        indices.push_back(v.find("index")->as_number());
      }
    }
  }
  std::sort(indices.begin(), indices.end());
  EXPECT_TRUE(std::adjacent_find(indices.begin(), indices.end()) ==
              indices.end());
}

}  // namespace
}  // namespace csim
