// The shared driver flag group (src/report/cli_args.hpp) must parse the same
// way from every tool: checked numbers, identical spellings, clear errors.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "src/core/error.hpp"
#include "src/report/cli_args.hpp"

namespace csim {
namespace {

using cli::ObsArgs;
using cli::parse_f64;
using cli::parse_u64;

/// Runs `args` through ObsArgs::consume the way the drivers do.
ObsArgs parse_all(std::vector<const char*> args) {
  args.insert(args.begin(), "tool");
  ObsArgs o;
  const int argc = static_cast<int>(args.size());
  char** argv = const_cast<char**>(args.data());
  for (int i = 1; i < argc; ++i) {
    EXPECT_TRUE(o.consume(argc, argv, i)) << "unconsumed flag: " << argv[i];
  }
  return o;
}

TEST(ParseU64, AcceptsPlainNumbers) {
  EXPECT_EQ(parse_u64("--n", "0"), 0u);
  EXPECT_EQ(parse_u64("--n", "123456789"), 123456789u);
}

TEST(ParseU64, RejectsGarbageNamingTheFlag) {
  EXPECT_THROW((void)parse_u64("--metrics-interval", "abc"), ConfigError);
  EXPECT_THROW((void)parse_u64("--metrics-interval", "12x"), ConfigError);
  EXPECT_THROW((void)parse_u64("--metrics-interval", ""), ConfigError);
  try {
    (void)parse_u64("--metrics-interval", "abc");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--metrics-interval"),
              std::string::npos);
  }
}

TEST(ParseF64, AcceptsFloatsRejectsGarbage) {
  EXPECT_DOUBLE_EQ(parse_f64("--row-deadline", "2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_f64("--row-deadline", "10"), 10.0);
  EXPECT_THROW((void)parse_f64("--row-deadline", "abc"), ConfigError);
  EXPECT_THROW((void)parse_f64("--row-deadline", "1.5x"), ConfigError);
  EXPECT_THROW((void)parse_f64("--row-deadline", ""), ConfigError);
}

TEST(ObsArgs, ConsumesTheSharedFlagGroup) {
  const ObsArgs o = parse_all({"--trace-out", "t.json", "--metrics-interval",
                               "500", "--metrics-out", "m", "--manifest",
                               "run.json"});
  EXPECT_EQ(o.trace_out, "t.json");
  EXPECT_EQ(o.metrics_interval, 500u);
  EXPECT_EQ(o.metrics_out, "m");
  EXPECT_EQ(o.manifest_out, "run.json");
  EXPECT_FALSE(o.contention.enabled);
}

TEST(ObsArgs, LeavesForeignFlagsAlone) {
  ObsArgs o;
  const char* argv[] = {"tool", "--procs", "64"};
  int i = 1;
  EXPECT_FALSE(o.consume(3, const_cast<char**>(argv), i));
  EXPECT_EQ(i, 1);
}

TEST(ObsArgs, ContentionFlagEnablesDefaults) {
  const ObsArgs o = parse_all({"--contention"});
  EXPECT_TRUE(o.contention.enabled);
  const ContentionSpec d{};
  EXPECT_EQ(o.contention.bank_busy, d.bank_busy);
  EXPECT_EQ(o.contention.directory_busy, d.directory_busy);
  EXPECT_EQ(o.contention.nic_busy, d.nic_busy);
}

TEST(ObsArgs, ContentionBusyTripleImpliesEnabled) {
  const ObsArgs o = parse_all({"--contention-busy", "2,5,9"});
  EXPECT_TRUE(o.contention.enabled);
  EXPECT_EQ(o.contention.bank_busy, 2u);
  EXPECT_EQ(o.contention.directory_busy, 5u);
  EXPECT_EQ(o.contention.nic_busy, 9u);
}

TEST(ObsArgs, RejectsMalformedValues) {
  ObsArgs o;
  {
    const char* argv[] = {"tool", "--metrics-interval", "0"};
    int i = 1;
    EXPECT_THROW((void)o.consume(3, const_cast<char**>(argv), i), ConfigError);
  }
  {
    const char* argv[] = {"tool", "--contention-busy", "2,5"};
    int i = 1;
    EXPECT_THROW((void)o.consume(3, const_cast<char**>(argv), i), ConfigError);
  }
  {
    const char* argv[] = {"tool", "--trace-out"};  // missing value
    int i = 1;
    EXPECT_THROW((void)o.consume(2, const_cast<char**>(argv), i), ConfigError);
  }
}

TEST(ObsArgs, ConsumesTheCrashSafetyFlags) {
  const ObsArgs o = parse_all({"--journal-dir", "j", "--resume",
                               "--row-deadline", "2.5", "--retries", "3"});
  EXPECT_EQ(o.policy.journal_dir, "j");
  EXPECT_TRUE(o.policy.resume);
  EXPECT_DOUBLE_EQ(o.policy.row_deadline_seconds, 2.5);
  EXPECT_EQ(o.policy.max_retries, 3u);
  EXPECT_EQ(o.fault_plan, nullptr);
}

TEST(ObsArgs, RowDeadlineMustBePositive) {
  for (const char* bad : {"0", "-1"}) {
    ObsArgs o;
    const char* argv[] = {"tool", "--row-deadline", bad};
    int i = 1;
    EXPECT_THROW((void)o.consume(3, const_cast<char**>(argv), i), ConfigError)
        << bad;
  }
}

TEST(ObsArgs, JournalDirMustBeNonEmpty) {
  ObsArgs o;
  const char* argv[] = {"tool", "--journal-dir", ""};
  int i = 1;
  EXPECT_THROW((void)o.consume(3, const_cast<char**>(argv), i), ConfigError);
}

TEST(ObsArgs, FaultPlanFlagParsesTheFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("csim_cli_args_plan_" +
        std::to_string(static_cast<unsigned long>(::getpid())) + ".txt"))
          .string();
  {
    std::ofstream os(path);
    os << "seed 7\n* throw transient 1\n";
  }
  const ObsArgs o = parse_all({"--fault-plan", path.c_str()});
  std::filesystem::remove(path);
  ASSERT_NE(o.fault_plan, nullptr);
  EXPECT_EQ(o.fault_plan->seed(), 7u);
  EXPECT_TRUE(o.fault_plan->lookup(1, 1).has_value());
}

TEST(ObsArgs, FaultPlanFlagRejectsMissingFile) {
  ObsArgs o;
  const char* argv[] = {"tool", "--fault-plan", "/nonexistent/plan.txt"};
  int i = 1;
  EXPECT_THROW((void)o.consume(3, const_cast<char**>(argv), i), ConfigError);
}

TEST(ObsArgs, ConsumesTheSamplingFlags) {
  const ObsArgs o = parse_all({"--sample", "4096,4096,16384", "--ckpt-dir",
                               "ckpts", "--warm-quantum", "262144"});
  EXPECT_TRUE(o.sampling.enabled);
  EXPECT_EQ(o.sampling.warmup_refs, 4096u);
  EXPECT_EQ(o.sampling.detail_refs, 4096u);
  EXPECT_EQ(o.sampling.period_refs, 16384u);
  EXPECT_EQ(o.sampling.warm_quantum, 262144u);
  EXPECT_EQ(o.policy.checkpoint_dir, "ckpts");
}

TEST(ObsArgs, SamplingFlagsValidateTheirCombinations) {
  // --ckpt-dir and --warm-quantum both modify sampled runs only, so alone
  // they would be silently dead flags; apply() rejects the combination.
  for (const std::vector<const char*>& args :
       {std::vector<const char*>{"--ckpt-dir", "ckpts"},
        std::vector<const char*>{"--warm-quantum", "65536"}}) {
    const ObsArgs o = parse_all(args);
    SweepRequest req;
    EXPECT_THROW(o.apply(req), ConfigError) << args[0];
  }
  {
    ObsArgs o;
    const char* argv[] = {"tool", "--sample", "4096,4096"};
    int i = 1;
    EXPECT_THROW((void)o.consume(3, const_cast<char**>(argv), i), ConfigError);
  }
  {
    ObsArgs o;
    const char* argv[] = {"tool", "--warm-quantum", "0"};
    int i = 1;
    EXPECT_THROW((void)o.consume(3, const_cast<char**>(argv), i), ConfigError);
  }
}

TEST(ObsArgs, ApplyInstallsThePolicyOnTheRequest) {
  ObsArgs o = parse_all({"--journal-dir", "j", "--retries", "2"});
  SweepRequest req;
  o.apply(req);
  EXPECT_EQ(req.policy.journal_dir, "j");
  EXPECT_EQ(req.policy.max_retries, 2u);
  EXPECT_EQ(req.policy.faults, nullptr);

  FaultSpec f;
  auto plan = std::make_shared<FaultPlan>();
  plan->add_wildcard(f);
  o.fault_plan = plan;
  o.apply(req);
  EXPECT_EQ(req.policy.faults, plan.get());
}

TEST(ObsArgs, ApplyRejectsResumeWithoutJournalDir) {
  const ObsArgs o = parse_all({"--resume"});
  SweepRequest req;
  EXPECT_THROW(o.apply(req), ConfigError);
}

TEST(ObsArgs, ParFlagsReachEveryRowSpec) {
  const ObsArgs o = parse_all({"--par", "4", "--par-horizon", "60"});
  EXPECT_EQ(o.par.workers, 4u);
  EXPECT_EQ(o.par.horizon_override, 60u);
  SweepRequest req;
  req.configs.push_back(MachineSpecBuilder{}.procs(16).build());
  req.configs.push_back(
      MachineSpecBuilder{}.procs(16).procs_per_cluster(4).build());
  o.apply(req);
  for (const MachineSpec& cfg : req.configs) {
    EXPECT_EQ(cfg.parallel.workers, 4u);
    EXPECT_EQ(cfg.parallel.horizon_override, 60u);
  }
}

TEST(ObsArgs, ParFlagRejectsContradictions) {
  {
    // --par 0 means "sequential" — reject it rather than guess.
    ObsArgs o;
    const char* argv[] = {"tool", "--par", "0"};
    int i = 1;
    EXPECT_THROW((void)o.consume(3, const_cast<char**>(argv), i), ConfigError);
  }
  {
    ObsArgs o;
    const char* argv[] = {"tool", "--par-horizon", "0"};
    int i = 1;
    EXPECT_THROW((void)o.consume(3, const_cast<char**>(argv), i), ConfigError);
  }
  // --par-horizon without --par, and --par with features that assume a
  // single global event order, all fail at apply() with a ConfigError.
  // (--sample is absent: interval sampling composes with --par.)
  for (const std::vector<const char*>& args :
       {std::vector<const char*>{"--par-horizon", "60"},
        std::vector<const char*>{"--par", "2", "--contention"},
        std::vector<const char*>{"--par", "2", "--trace-out", "t.json"},
        std::vector<const char*>{"--par", "2", "--metrics-interval", "100"}}) {
    const ObsArgs o = parse_all(args);
    SweepRequest req;
    req.configs.push_back(MachineSpecBuilder{}.procs(16).build());
    EXPECT_THROW(o.apply(req), ConfigError) << args[0];
  }
  {
    // Sampling x parallel is a supported composition: apply() must accept it.
    const ObsArgs o = parse_all({"--par", "2", "--sample", "1,1,4096"});
    SweepRequest req;
    req.configs.push_back(MachineSpecBuilder{}.procs(16).build());
    EXPECT_NO_THROW(o.apply(req));
    EXPECT_TRUE(req.configs.at(0).sampling.enabled);
    EXPECT_EQ(req.configs.at(0).parallel.workers, 2u);
  }
}

TEST(ObsArgs, ObserverFactoryOnlyWhenObservabilityRequested) {
  EXPECT_FALSE(static_cast<bool>(ObsArgs{}.observer_factory(3)));
  ObsArgs traced;
  traced.trace_out = "t.json";
  EXPECT_TRUE(static_cast<bool>(traced.observer_factory(3)));
}

TEST(ObsArgs, UsageDocumentsEveryFlag) {
  const std::string u = ObsArgs::usage();
  for (const char* flag :
       {"--trace-out", "--metrics-interval", "--metrics-out", "--manifest",
        "--contention", "--contention-busy", "--journal-dir", "--resume",
        "--row-deadline", "--retries", "--fault-plan", "--sample",
        "--ckpt-dir", "--warm-quantum", "--par", "--par-horizon"}) {
    EXPECT_NE(u.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace csim
