// The crash-safety policy layered on run_sweep: retryable-error taxonomy,
// the deterministic fault plan, per-row deadlines, bounded retries, and the
// write-ahead journal's skip-on-resume behaviour.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "src/core/error.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/address_space.hpp"
#include "src/obs/manifest.hpp"
#include "src/report/experiment.hpp"
#include "src/report/fault_injection.hpp"

namespace csim {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = (fs::temp_directory_path() /
            ("csim_policy_test_" + tag + "_" +
             std::to_string(static_cast<unsigned long>(::getpid()))))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

/// A fast deterministic workload: each proc reads its own line and computes.
class TinyProgram : public Program {
 public:
  TinyProgram() { set_scale(ProblemScale::Test); }
  [[nodiscard]] std::string name() const override { return "tiny"; }
  void setup(AddressSpace& as, const MachineSpec&) override {
    base_ = as.alloc(4096, "mem");
  }
  SimTask body(Proc& p) override {
    co_await p.read(base_ + 64 * p.id());
    co_await p.compute(10);
  }

 private:
  Addr base_ = 0;
};

MachineSpec mc(unsigned ppc = 2) {
  MachineSpec c;
  c.num_procs = 4;
  c.procs_per_cluster = ppc;
  return c;
}

SweepRequest tiny_request(std::vector<MachineSpec> configs) {
  SweepRequest req;
  req.make_app = [] { return std::make_unique<TinyProgram>(); };
  req.configs = std::move(configs);
  return req;
}

std::uint64_t tiny_digest(const MachineSpec& cfg) {
  return obs::config_digest(cfg, "tiny", ProblemScale::Test);
}

// --- Error taxonomy ----------------------------------------------------------

TEST(ErrorTaxonomy, KindNamesRoundTrip) {
  for (const SimErrorKind k :
       {SimErrorKind::Config, SimErrorKind::Deadlock, SimErrorKind::Livelock,
        SimErrorKind::Protocol, SimErrorKind::App, SimErrorKind::Timeout,
        SimErrorKind::Transient}) {
    EXPECT_EQ(sim_error_kind_from_string(to_string(k)), k);
  }
}

TEST(ErrorTaxonomy, UnknownKindNameThrows) {
  EXPECT_THROW((void)sim_error_kind_from_string("flaky"),
               std::invalid_argument);
  EXPECT_THROW((void)sim_error_kind_from_string(""), std::invalid_argument);
}

TEST(ErrorTaxonomy, OnlyHostDependentKindsAreRetryable) {
  EXPECT_TRUE(is_retryable(SimErrorKind::Timeout));
  EXPECT_TRUE(is_retryable(SimErrorKind::Transient));
  // Deterministic failures would fail identically on every retry.
  EXPECT_FALSE(is_retryable(SimErrorKind::Config));
  EXPECT_FALSE(is_retryable(SimErrorKind::Deadlock));
  EXPECT_FALSE(is_retryable(SimErrorKind::Livelock));
  EXPECT_FALSE(is_retryable(SimErrorKind::Protocol));
  EXPECT_FALSE(is_retryable(SimErrorKind::App));
}

TEST(ErrorTaxonomy, ThrowSimErrorPicksTheConcreteType) {
  EXPECT_THROW(throw_sim_error(SimErrorKind::Transient, "x"), TransientError);
  EXPECT_THROW(throw_sim_error(SimErrorKind::Timeout, "x"), TimeoutError);
  EXPECT_THROW(throw_sim_error(SimErrorKind::Deadlock, "x"), DeadlockError);
  try {
    throw_sim_error(SimErrorKind::Transient, "injected");
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::Transient);
    EXPECT_EQ(e.summary(), "injected");
  }
}

// --- Fault plan --------------------------------------------------------------

TEST(FaultPlan, ParsesDirectivesAndComments) {
  const FaultPlan plan = FaultPlan::parse(
      "# header comment\n"
      "seed 42\n"
      "\n"
      "* throw transient 2   # trailing comment\n"
      "00000000deadbeef stall 0.25\n"
      "00000000cafef00d torn-write 0.75\n",
      "test");
  EXPECT_EQ(plan.seed(), 42u);
  EXPECT_FALSE(plan.empty());

  const auto wild = plan.lookup(0x1234, 1);
  ASSERT_TRUE(wild.has_value());
  EXPECT_EQ(wild->action, FaultSpec::Action::Throw);
  EXPECT_EQ(wild->error, SimErrorKind::Transient);
  EXPECT_EQ(wild->fail_attempts, 2u);

  const auto stall = plan.lookup(0xdeadbeef, 1);
  ASSERT_TRUE(stall.has_value());
  EXPECT_EQ(stall->action, FaultSpec::Action::Stall);
  EXPECT_DOUBLE_EQ(stall->stall_seconds, 0.25);

  const auto torn = plan.lookup(0xcafef00d, 1);
  ASSERT_TRUE(torn.has_value());
  EXPECT_EQ(torn->action, FaultSpec::Action::TornWrite);
  EXPECT_DOUBLE_EQ(torn->keep_fraction, 0.75);
}

TEST(FaultPlan, DigestSpecificFaultWinsOverWildcard) {
  FaultPlan plan;
  FaultSpec wild;
  wild.error = SimErrorKind::Transient;
  plan.add_wildcard(wild);
  FaultSpec specific;
  specific.error = SimErrorKind::App;
  plan.add(7, specific);

  EXPECT_EQ(plan.lookup(7, 1)->error, SimErrorKind::App);
  EXPECT_EQ(plan.lookup(8, 1)->error, SimErrorKind::Transient);
}

TEST(FaultPlan, FailAttemptsBoundsTheFault) {
  FaultPlan plan;
  FaultSpec f;
  f.fail_attempts = 2;
  plan.add(7, f);
  EXPECT_TRUE(plan.lookup(7, 1).has_value());
  EXPECT_TRUE(plan.lookup(7, 2).has_value());
  EXPECT_FALSE(plan.lookup(7, 3).has_value());  // retry #2 succeeds
}

TEST(FaultPlan, ProbabilityCoinIsDeterministicInSeedDigestAttempt) {
  FaultSpec f;
  f.probability = 0.5;
  FaultPlan a;
  a.set_seed(99);
  a.add_wildcard(f);
  FaultPlan b;  // independently built, same seed: decisions must agree
  b.set_seed(99);
  b.add_wildcard(f);

  unsigned fired = 0;
  for (unsigned attempt = 1; attempt <= 64; ++attempt) {
    for (std::uint64_t digest : {1ULL, 0xabcULL, 0xffff0000ULL}) {
      const bool hit_a = a.lookup(digest, attempt).has_value();
      EXPECT_EQ(hit_a, b.lookup(digest, attempt).has_value());
      fired += hit_a ? 1u : 0u;
    }
  }
  // A fair coin over 192 draws lands strictly inside the extremes; the
  // draws are fixed by (seed, digest, attempt), so this cannot flake.
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 192u);
}

TEST(FaultPlan, ProbabilityZeroNeverFires) {
  FaultPlan plan;
  FaultSpec f;
  f.probability = 0.0;
  plan.add_wildcard(f);
  for (unsigned attempt = 1; attempt <= 16; ++attempt) {
    EXPECT_FALSE(plan.lookup(5, attempt).has_value());
  }
}

TEST(FaultPlan, ParseErrorsNameOriginAndLine) {
  const auto expect_bad = [](const char* text, const char* fragment) {
    try {
      (void)FaultPlan::parse(text, "plan.txt");
      FAIL() << "expected ConfigError for: " << text;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("plan.txt:1"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_bad("zzz throw transient", "config digest");
  expect_bad("* explode", "unknown action");
  expect_bad("* throw flaky", "flaky");
  expect_bad("* stall", "stall takes");
  expect_bad("* stall -1", ">= 0");
  expect_bad("* torn-write 1.5", "[0, 1]");
  expect_bad("* throw transient 1 2.0", "probability");
  expect_bad("seed 1 2", "seed takes one value");
  expect_bad("*", "expected");
}

TEST(FaultPlan, ParseFileRejectsMissingPath) {
  EXPECT_THROW((void)FaultPlan::parse_file("/nonexistent/plan.txt"),
               ConfigError);
}

// --- run_sweep policy --------------------------------------------------------

TEST(SweepPolicy, DefaultPolicyComputesNoDigests) {
  const SweepResult sweep = run_sweep(tiny_request({mc(1), mc(2)}));
  ASSERT_EQ(sweep.rows.size(), 2u);
  ASSERT_EQ(sweep.outcomes.size(), 2u);
  EXPECT_TRUE(sweep.journal_warnings.empty());
  for (const RowOutcome& oc : sweep.outcomes) {
    EXPECT_EQ(oc.status, RowOutcome::Status::Ok);
    EXPECT_EQ(oc.attempts, 1u);
    EXPECT_FALSE(oc.from_journal);
    // The identity probe never ran: journaling off means zero digest work.
    EXPECT_EQ(oc.config_digest, 0u);
  }
}

TEST(SweepPolicy, RetryableFaultSucceedsAfterRetry) {
  FaultPlan plan;
  FaultSpec f;
  f.error = SimErrorKind::Transient;
  f.fail_attempts = 1;  // only the first attempt fails
  plan.add_wildcard(f);

  SweepRequest req = tiny_request({mc(2)});
  req.policy.faults = &plan;
  req.policy.max_retries = 2;
  req.policy.backoff_ms = 0;
  const SweepResult sweep = run_sweep(req);
  ASSERT_EQ(sweep.rows.size(), 1u);
  EXPECT_TRUE(sweep.rows[0].ok);
  EXPECT_EQ(sweep.outcomes[0].status, RowOutcome::Status::Ok);
  EXPECT_EQ(sweep.outcomes[0].attempts, 2u);
  EXPECT_EQ(sweep.outcomes[0].config_digest, tiny_digest(mc(2)));
}

TEST(SweepPolicy, NonRetryableFaultIsNotRetried) {
  FaultPlan plan;
  FaultSpec f;
  f.error = SimErrorKind::App;  // deterministic: retrying cannot help
  plan.add_wildcard(f);

  SweepRequest req = tiny_request({mc(2)});
  req.policy.faults = &plan;
  req.policy.max_retries = 3;
  req.policy.backoff_ms = 0;
  const SweepResult sweep = run_sweep(req);
  EXPECT_FALSE(sweep.rows[0].ok);
  EXPECT_EQ(sweep.rows[0].error_kind, "app");
  EXPECT_EQ(sweep.outcomes[0].status, RowOutcome::Status::Failed);
  EXPECT_EQ(sweep.outcomes[0].attempts, 1u);
}

TEST(SweepPolicy, ExhaustedRetriesReportTheLastFailure) {
  FaultPlan plan;
  FaultSpec f;
  f.error = SimErrorKind::Transient;  // fail_attempts = 0: every attempt
  plan.add_wildcard(f);

  SweepRequest req = tiny_request({mc(2)});
  req.policy.faults = &plan;
  req.policy.max_retries = 2;
  req.policy.backoff_ms = 0;
  const SweepResult sweep = run_sweep(req);
  EXPECT_FALSE(sweep.rows[0].ok);
  EXPECT_EQ(sweep.rows[0].error_kind, "transient");
  EXPECT_NE(sweep.rows[0].error.find("attempt 3"), std::string::npos);
  EXPECT_EQ(sweep.outcomes[0].status, RowOutcome::Status::Failed);
  EXPECT_EQ(sweep.outcomes[0].attempts, 3u);
}

TEST(SweepPolicy, StallPastDeadlineTimesOut) {
  FaultPlan plan;
  FaultSpec f;
  f.action = FaultSpec::Action::Stall;
  f.stall_seconds = 0.2;
  plan.add_wildcard(f);

  SweepRequest req = tiny_request({mc(2)});
  req.policy.faults = &plan;
  req.policy.row_deadline_seconds = 0.05;
  const SweepResult sweep = run_sweep(req);
  EXPECT_FALSE(sweep.rows[0].ok);
  EXPECT_EQ(sweep.rows[0].error_kind, "timeout");
  EXPECT_NE(sweep.rows[0].error.find("row deadline"), std::string::npos);
  EXPECT_EQ(sweep.outcomes[0].status, RowOutcome::Status::TimedOut);
  // The synthesized row still carries the app identity for reporting.
  EXPECT_EQ(sweep.rows[0].app_name, "tiny");
}

TEST(SweepPolicy, GenerousDeadlineLeavesResultsUntouched) {
  const SweepResult plain = run_sweep(tiny_request({mc(1), mc(2)}));
  SweepRequest req = tiny_request({mc(1), mc(2)});
  req.policy.row_deadline_seconds = 300;
  const SweepResult fenced = run_sweep(req);
  ASSERT_EQ(fenced.rows.size(), plain.rows.size());
  for (std::size_t i = 0; i < plain.rows.size(); ++i) {
    ASSERT_TRUE(fenced.rows[i].ok);
    EXPECT_EQ(obs::result_digest(fenced.rows[i]),
              obs::result_digest(plain.rows[i]));
    // The deadline budget must not leak into the reported configuration.
    EXPECT_EQ(fenced.rows[i].config.max_host_seconds, 0.0);
  }
}

TEST(SweepPolicy, JournalWrittenThenResumeSkipsSimulation) {
  const TempDir tmp("resume");
  const std::vector<MachineSpec> configs = {mc(1), mc(2), mc(4)};
  auto calls = std::make_shared<std::atomic<int>>(0);
  const auto counting_factory = [calls]() -> std::unique_ptr<Program> {
    ++*calls;
    return std::make_unique<TinyProgram>();
  };

  SweepRequest first;
  first.make_app = counting_factory;
  first.configs = configs;
  first.policy.journal_dir = tmp.path();
  const SweepResult a = run_sweep(first);
  EXPECT_TRUE(a.all_ok());
  EXPECT_TRUE(a.journal_warnings.empty());
  // identity probe + one app per row
  EXPECT_EQ(calls->load(), 1 + static_cast<int>(configs.size()));
  for (const RowOutcome& oc : a.outcomes) EXPECT_FALSE(oc.from_journal);

  SweepRequest second = first;
  second.policy.resume = true;
  const SweepResult b = run_sweep(second);
  EXPECT_TRUE(b.all_ok());
  // Only the identity probe ran: every row was satisfied from the journal.
  EXPECT_EQ(calls->load(), 2 + static_cast<int>(configs.size()));
  ASSERT_EQ(b.outcomes.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_TRUE(b.outcomes[i].from_journal);
    EXPECT_EQ(obs::result_digest(b.rows[i]), obs::result_digest(a.rows[i]));
  }
}

TEST(SweepPolicy, ResumeWithoutJournalReSimulatesEverything) {
  const TempDir tmp("empty");
  SweepRequest req = tiny_request({mc(2)});
  req.policy.journal_dir = tmp.path() + "/never_written";
  req.policy.resume = true;
  const SweepResult sweep = run_sweep(req);
  EXPECT_TRUE(sweep.all_ok());
  EXPECT_FALSE(sweep.outcomes[0].from_journal);
}

TEST(SweepPolicy, FailedRowsAreNeverJournaled) {
  const TempDir tmp("nofail");
  FaultPlan plan;
  FaultSpec f;
  f.error = SimErrorKind::App;
  plan.add_wildcard(f);
  SweepRequest req = tiny_request({mc(2)});
  req.policy.journal_dir = tmp.path();
  req.policy.faults = &plan;
  const SweepResult sweep = run_sweep(req);
  EXPECT_FALSE(sweep.rows[0].ok);
  // The journal holds only rows a resume may trust: completed ones.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(tmp.path())) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 0u);
}

TEST(SweepPolicy, ThrowingFactoryDisablesJournalingGracefully) {
  const TempDir tmp("probe");
  SweepRequest req;
  req.make_app = []() -> std::unique_ptr<Program> {
    throw std::runtime_error("factory bug");
  };
  req.configs = {mc(2)};
  req.policy.journal_dir = tmp.path();
  const SweepResult sweep = run_sweep(req);
  // Pre-policy semantics: the row fails with the factory's diagnostic.
  ASSERT_EQ(sweep.rows.size(), 1u);
  EXPECT_FALSE(sweep.rows[0].ok);
  EXPECT_NE(sweep.rows[0].error.find("factory bug"), std::string::npos);
  ASSERT_FALSE(sweep.journal_warnings.empty());
  EXPECT_NE(sweep.journal_warnings[0].find("identity probe"),
            std::string::npos);
}

// --- Reporting ---------------------------------------------------------------

TEST(SweepReporting, CsvAddsStatusAndAttemptsColumns) {
  FaultPlan plan;
  FaultSpec f;
  f.error = SimErrorKind::Transient;
  f.fail_attempts = 1;
  plan.add_wildcard(f);
  SweepRequest req = tiny_request({mc(2)});
  req.policy.faults = &plan;
  req.policy.max_retries = 1;
  req.policy.backoff_ms = 0;
  const SweepResult sweep = run_sweep(req);
  ASSERT_TRUE(sweep.all_ok());

  std::ostringstream os;
  write_csv(os, sweep);
  const std::string csv = os.str();
  EXPECT_NE(csv.find(",status,attempts\n"), std::string::npos);
  EXPECT_NE(csv.find(",ok,2\n"), std::string::npos);
}

TEST(SweepReporting, OutcomeTableShowsJournalProvenanceAndWarnings) {
  SweepResult sweep;
  sweep.rows.resize(2);
  sweep.rows[0].ok = true;
  sweep.rows[0].app_name = "tiny";
  sweep.rows[1].ok = false;
  sweep.rows[1].error_kind = "timeout";
  sweep.outcomes.resize(2);
  sweep.outcomes[0] = {RowOutcome::Status::Ok, 1, true, 0xabcdULL};
  sweep.outcomes[1] = {RowOutcome::Status::TimedOut, 3, false, 0x1234ULL};
  sweep.journal_warnings.push_back("journal: something was skipped");

  std::ostringstream os;
  EXPECT_EQ(write_outcomes(os, sweep), 1u);  // one row not ok
  const std::string out = os.str();
  EXPECT_NE(out.find("(journal)"), std::string::npos);
  EXPECT_NE(out.find("timed_out"), std::string::npos);
  EXPECT_NE(out.find("attempts=3"), std::string::npos);
  EXPECT_NE(out.find("warning: journal: something was skipped"),
            std::string::npos);
}

}  // namespace
}  // namespace csim
