// Parallel experiment sweeps must be bit-identical to serial simulation:
// each run is an isolated, deterministic, single-threaded simulation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

TEST(ParallelSweep, MatchesSerialRuns) {
  auto factory = [] { return make_app("radix", ProblemScale::Test); };
  const auto sweep = sweep_clusters(factory, 8 * 1024, {1, 2, 4, 8});
  ASSERT_EQ(sweep.size(), 4u);
  for (const SimResult& r : sweep) {
    auto app = factory();
    const SimResult serial = simulate(*app, r.config);
    EXPECT_EQ(serial.wall_time, r.wall_time)
        << r.config.procs_per_cluster << "ppc";
    EXPECT_EQ(serial.totals.read_misses, r.totals.read_misses);
    EXPECT_EQ(serial.totals.merges, r.totals.merges);
  }
}

TEST(ParallelSweep, RunSweepPreservesOrder) {
  SweepRequest req;
  req.make_app = [] { return make_app("fft", ProblemScale::Test); };
  for (unsigned ppc : {8u, 1u, 4u, 2u}) {  // deliberately shuffled
    req.configs.push_back(paper_machine(ppc, 0));
  }
  const SweepResult res = run_sweep(req);
  ASSERT_EQ(res.size(), 4u);
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(res.rows[0].config.procs_per_cluster, 8u);
  EXPECT_EQ(res.rows[1].config.procs_per_cluster, 1u);
  EXPECT_EQ(res.rows[2].config.procs_per_cluster, 4u);
  EXPECT_EQ(res.rows[3].config.procs_per_cluster, 2u);
}

TEST(ParallelSweep, CapturesFactoryFailuresInsteadOfThrowing) {
  // Graceful degradation: a throwing factory yields an ok == false row with
  // the diagnostics attached, not a sweep-wide exception.
  SweepRequest req;
  req.make_app = []() -> std::unique_ptr<Program> {
    throw std::runtime_error("factory failure");
  };
  req.configs = {paper_machine(1, 0)};
  const SweepResult res = run_sweep(req);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_FALSE(res.all_ok());
  ASSERT_EQ(res.failures(), 1u);
  EXPECT_FALSE(res.rows[0].ok);
  EXPECT_EQ(res.rows[0].error_kind, "exception");
  EXPECT_NE(res.rows[0].error.find("factory failure"), std::string::npos);
}

TEST(ParallelSweep, MinimalSweepRequestPreservesRowOrder) {
  // The smallest possible request — just make_app + configs — must keep
  // returning rows in request order (the contract the removed run_configs
  // shims used to provide).
  const auto results =
      run_sweep(SweepRequest{[] { return make_app("fft", ProblemScale::Test); },
                             {paper_machine(2, 0), paper_machine(1, 0)}})
          .rows;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].config.procs_per_cluster, 2u);
  EXPECT_EQ(results[1].config.procs_per_cluster, 1u);
}

TEST(ParallelSweep, OnRowFiresOncePerRowWithMatchingResults) {
  SweepRequest req;
  req.make_app = [] { return make_app("fft", ProblemScale::Test); };
  for (unsigned ppc : {1u, 2u, 4u, 8u}) {
    req.configs.push_back(paper_machine(ppc, 0));
  }
  std::vector<int> fired(req.configs.size(), 0);
  req.on_row = [&](std::size_t index, const SimResult& row,
                   const RowOutcome& outcome) {
    ASSERT_LT(index, fired.size());
    fired[index] += 1;
    // The callback sees the final row: same config slot, final outcome.
    EXPECT_EQ(row.config.procs_per_cluster,
              req.configs[index].procs_per_cluster);
    EXPECT_EQ(outcome.status, RowOutcome::Status::Ok);
    EXPECT_FALSE(outcome.from_journal);
  };
  const SweepResult res = run_sweep(req);
  EXPECT_TRUE(res.all_ok());
  for (int n : fired) EXPECT_EQ(n, 1);
}

TEST(ParallelSweep, OnRowSeesJournalResumeHitsAndSurvivesThrows) {
  SweepRequest req;
  req.make_app = [] { return make_app("fft", ProblemScale::Test); };
  req.configs = {paper_machine(1, 0), paper_machine(4, 0)};
  const std::string jdir =
      (std::filesystem::temp_directory_path() /
       ("csim_onrow_resume_" +
        std::to_string(static_cast<unsigned long>(::getpid()))))
          .string();
  std::filesystem::remove_all(jdir);
  req.policy.journal_dir = jdir;
  (void)run_sweep(req);  // populate the journal

  req.policy.resume = true;
  std::size_t journal_rows = 0;
  req.on_row = [&](std::size_t, const SimResult&, const RowOutcome& outcome) {
    if (outcome.from_journal) ++journal_rows;
    throw std::runtime_error("listener bug");  // must not abort the sweep
  };
  const SweepResult res = run_sweep(req);
  std::filesystem::remove_all(jdir);
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(journal_rows, 2u);  // resume hits stream through on_row too
  // The throwing callback became warnings, one per row, not an abort.
  std::size_t thrown = 0;
  for (const std::string& w : res.journal_warnings) {
    thrown += w.find("listener bug") != std::string::npos;
  }
  EXPECT_EQ(thrown, 2u);
}

// The row pool and per-row --par workers must not multiply past the host:
// pool x row_threads <= host_cores, while staying >= 1 and <= rows.
TEST(ParallelSweep, PoolWidthClampsThreadProductToHostCores) {
  // Sequential rows: the old behavior, min(cores, rows).
  EXPECT_EQ(sweep_pool_width(16, 1, 8), 8u);
  EXPECT_EQ(sweep_pool_width(4, 1, 8), 4u);
  // The ISSUE case: a 16-row sweep at --par 8 on an 8-core host runs one
  // row at a time (8 threads), not 16 x 8 = 128 threads.
  EXPECT_EQ(sweep_pool_width(16, 8, 8), 1u);
  EXPECT_EQ(sweep_pool_width(16, 4, 8), 2u);
  EXPECT_EQ(sweep_pool_width(16, 2, 8), 4u);
  // Oversubscribed per-row count still yields one row at a time.
  EXPECT_EQ(sweep_pool_width(16, 64, 8), 1u);
  // Never wider than the runnable rows, never zero.
  EXPECT_EQ(sweep_pool_width(3, 2, 32), 3u);
  EXPECT_EQ(sweep_pool_width(0, 4, 8), 1u);
  EXPECT_EQ(sweep_pool_width(5, 1, 0), 1u);  // degenerate host report
  EXPECT_EQ(sweep_pool_width(5, 0, 8), 5u);  // row_threads floored at 1
}

// A sweep whose rows run the parallel engine must still return rows
// bit-identical to the same configs run serially (the clamp only narrows
// the pool; the engine is deterministic at every thread count).
TEST(ParallelSweep, ParallelRowsMatchSerialRuns) {
  SweepRequest req;
  req.make_app = [] { return make_app("fft", ProblemScale::Test); };
  for (unsigned ppc : {4u, 8u}) {
    MachineSpec cfg = paper_machine(ppc, 0);
    cfg.parallel.workers = 8;
    req.configs.push_back(cfg);
  }
  const SweepResult res = run_sweep(req);
  ASSERT_EQ(res.size(), 2u);
  ASSERT_TRUE(res.all_ok());
  for (const SimResult& r : res) {
    auto app = req.make_app();
    MachineSpec seq = r.config;
    seq.parallel.workers = 1;  // windowed engine inline, no threads
    const SimResult one = simulate(*app, seq);
    EXPECT_EQ(one.wall_time, r.wall_time) << r.config.procs_per_cluster;
    EXPECT_EQ(one.totals.read_misses, r.totals.read_misses);
    EXPECT_EQ(one.totals.invalidations, r.totals.invalidations);
  }
}

}  // namespace
}  // namespace csim
