// Parallel experiment sweeps must be bit-identical to serial simulation:
// each run is an isolated, deterministic, single-threaded simulation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

TEST(ParallelSweep, MatchesSerialRuns) {
  auto factory = [] { return make_app("radix", ProblemScale::Test); };
  const auto sweep = sweep_clusters(factory, 8 * 1024, {1, 2, 4, 8});
  ASSERT_EQ(sweep.size(), 4u);
  for (const SimResult& r : sweep) {
    auto app = factory();
    const SimResult serial = simulate(*app, r.config);
    EXPECT_EQ(serial.wall_time, r.wall_time)
        << r.config.procs_per_cluster << "ppc";
    EXPECT_EQ(serial.totals.read_misses, r.totals.read_misses);
    EXPECT_EQ(serial.totals.merges, r.totals.merges);
  }
}

TEST(ParallelSweep, RunSweepPreservesOrder) {
  SweepRequest req;
  req.make_app = [] { return make_app("fft", ProblemScale::Test); };
  for (unsigned ppc : {8u, 1u, 4u, 2u}) {  // deliberately shuffled
    req.configs.push_back(paper_machine(ppc, 0));
  }
  const SweepResult res = run_sweep(req);
  ASSERT_EQ(res.size(), 4u);
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(res.rows[0].config.procs_per_cluster, 8u);
  EXPECT_EQ(res.rows[1].config.procs_per_cluster, 1u);
  EXPECT_EQ(res.rows[2].config.procs_per_cluster, 4u);
  EXPECT_EQ(res.rows[3].config.procs_per_cluster, 2u);
}

TEST(ParallelSweep, CapturesFactoryFailuresInsteadOfThrowing) {
  // Graceful degradation: a throwing factory yields an ok == false row with
  // the diagnostics attached, not a sweep-wide exception.
  SweepRequest req;
  req.make_app = []() -> std::unique_ptr<Program> {
    throw std::runtime_error("factory failure");
  };
  req.configs = {paper_machine(1, 0)};
  const SweepResult res = run_sweep(req);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_FALSE(res.all_ok());
  ASSERT_EQ(res.failures(), 1u);
  EXPECT_FALSE(res.rows[0].ok);
  EXPECT_EQ(res.rows[0].error_kind, "exception");
  EXPECT_NE(res.rows[0].error.find("factory failure"), std::string::npos);
}

TEST(ParallelSweep, MinimalSweepRequestPreservesRowOrder) {
  // The smallest possible request — just make_app + configs — must keep
  // returning rows in request order (the contract the removed run_configs
  // shims used to provide).
  const auto results =
      run_sweep(SweepRequest{[] { return make_app("fft", ProblemScale::Test); },
                             {paper_machine(2, 0), paper_machine(1, 0)}})
          .rows;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].config.procs_per_cluster, 2u);
  EXPECT_EQ(results[1].config.procs_per_cluster, 1u);
}

TEST(ParallelSweep, OnRowFiresOncePerRowWithMatchingResults) {
  SweepRequest req;
  req.make_app = [] { return make_app("fft", ProblemScale::Test); };
  for (unsigned ppc : {1u, 2u, 4u, 8u}) {
    req.configs.push_back(paper_machine(ppc, 0));
  }
  std::vector<int> fired(req.configs.size(), 0);
  req.on_row = [&](std::size_t index, const SimResult& row,
                   const RowOutcome& outcome) {
    ASSERT_LT(index, fired.size());
    fired[index] += 1;
    // The callback sees the final row: same config slot, final outcome.
    EXPECT_EQ(row.config.procs_per_cluster,
              req.configs[index].procs_per_cluster);
    EXPECT_EQ(outcome.status, RowOutcome::Status::Ok);
    EXPECT_FALSE(outcome.from_journal);
  };
  const SweepResult res = run_sweep(req);
  EXPECT_TRUE(res.all_ok());
  for (int n : fired) EXPECT_EQ(n, 1);
}

TEST(ParallelSweep, OnRowSeesJournalResumeHitsAndSurvivesThrows) {
  SweepRequest req;
  req.make_app = [] { return make_app("fft", ProblemScale::Test); };
  req.configs = {paper_machine(1, 0), paper_machine(4, 0)};
  const std::string jdir =
      (std::filesystem::temp_directory_path() /
       ("csim_onrow_resume_" +
        std::to_string(static_cast<unsigned long>(::getpid()))))
          .string();
  std::filesystem::remove_all(jdir);
  req.policy.journal_dir = jdir;
  (void)run_sweep(req);  // populate the journal

  req.policy.resume = true;
  std::size_t journal_rows = 0;
  req.on_row = [&](std::size_t, const SimResult&, const RowOutcome& outcome) {
    if (outcome.from_journal) ++journal_rows;
    throw std::runtime_error("listener bug");  // must not abort the sweep
  };
  const SweepResult res = run_sweep(req);
  std::filesystem::remove_all(jdir);
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(journal_rows, 2u);  // resume hits stream through on_row too
  // The throwing callback became warnings, one per row, not an abort.
  std::size_t thrown = 0;
  for (const std::string& w : res.journal_warnings) {
    thrown += w.find("listener bug") != std::string::npos;
  }
  EXPECT_EQ(thrown, 2u);
}

}  // namespace
}  // namespace csim
