// Parallel experiment sweeps must be bit-identical to serial simulation:
// each run is an isolated, deterministic, single-threaded simulation.
#include <gtest/gtest.h>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

TEST(ParallelSweep, MatchesSerialRuns) {
  auto factory = [] { return make_app("radix", ProblemScale::Test); };
  const auto sweep = sweep_clusters(factory, 8 * 1024, {1, 2, 4, 8});
  ASSERT_EQ(sweep.size(), 4u);
  for (const SimResult& r : sweep) {
    auto app = factory();
    const SimResult serial = simulate(*app, r.config);
    EXPECT_EQ(serial.wall_time, r.wall_time)
        << r.config.procs_per_cluster << "ppc";
    EXPECT_EQ(serial.totals.read_misses, r.totals.read_misses);
    EXPECT_EQ(serial.totals.merges, r.totals.merges);
  }
}

TEST(ParallelSweep, RunConfigsPreservesOrder) {
  std::vector<MachineConfig> configs;
  for (unsigned ppc : {8u, 1u, 4u, 2u}) {  // deliberately shuffled
    configs.push_back(paper_machine(ppc, 0));
  }
  const auto results = run_configs(
      [] { return make_app("fft", ProblemScale::Test); }, configs);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].config.procs_per_cluster, 8u);
  EXPECT_EQ(results[1].config.procs_per_cluster, 1u);
  EXPECT_EQ(results[2].config.procs_per_cluster, 4u);
  EXPECT_EQ(results[3].config.procs_per_cluster, 2u);
}

TEST(ParallelSweep, CapturesFactoryFailuresInsteadOfThrowing) {
  // Graceful degradation: a throwing factory yields an ok == false row with
  // the diagnostics attached, not a sweep-wide exception.
  std::vector<MachineConfig> configs = {paper_machine(1, 0)};
  const auto results = run_configs(
      []() -> std::unique_ptr<Program> {
        throw std::runtime_error("factory failure");
      },
      configs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].error_kind, "exception");
  EXPECT_NE(results[0].error.find("factory failure"), std::string::npos);
}

}  // namespace
}  // namespace csim
