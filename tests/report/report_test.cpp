// Report-layer tests: text tables, figure rendering, CSV, bench options.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/core/error.hpp"
#include "src/report/experiment.hpp"
#include "src/report/figures.hpp"
#include "src/report/table.hpp"

namespace csim {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"app", "value"});
  t.add_row({"lu", "1.05"});
  t.add_row({"ocean", "0.99"});
  const std::string s = t.str();
  EXPECT_NE(s.find("app"), std::string::npos);
  EXPECT_NE(s.find("ocean"), std::string::npos);
  EXPECT_NE(s.find("1.05"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TextTable, HandlesShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW((void)t.str());
}

TEST(Fmt, Formats) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt_pct(0.977), "97.7");
}

SimResult fake_result(unsigned ppc, Cycles cpu, Cycles load, Cycles merge,
                      Cycles sync) {
  SimResult r;
  r.app_name = "fake";
  r.config.procs_per_cluster = ppc;
  r.per_proc.push_back(TimeBuckets{cpu, load, merge, sync});
  r.wall_time = cpu + load + merge + sync;
  return r;
}

TEST(Figures, FirstBarIsHundred) {
  const auto bars =
      bars_from_sweep({fake_result(1, 60, 30, 0, 10), fake_result(2, 60, 15, 5, 10)});
  const std::string s = render_figure("test", bars);
  EXPECT_NE(s.find("100.0"), std::string::npos);
  EXPECT_NE(s.find("90.0"), std::string::npos);  // second bar total
  EXPECT_NE(s.find("1p"), std::string::npos);
  EXPECT_NE(s.find("2p"), std::string::npos);
}

TEST(Figures, GroupsRenormalize) {
  std::vector<FigureBar> bars;
  bars.push_back(FigureBar{"a/1p", TimeBuckets{200, 0, 0, 0}, true});
  bars.push_back(FigureBar{"a/2p", TimeBuckets{100, 0, 0, 0}, false});
  bars.push_back(FigureBar{"b/1p", TimeBuckets{50, 0, 0, 0}, true});
  bars.push_back(FigureBar{"b/2p", TimeBuckets{25, 0, 0, 0}, false});
  const std::string s = render_figure("test", bars);
  // Both groups show 100.0 then 50.0.
  std::size_t first100 = s.find("100.0");
  std::size_t second100 = s.find("100.0", first100 + 1);
  EXPECT_NE(second100, std::string::npos)
      << "each group must be normalized to its own first bar";
}

TEST(Experiment, PaperMachineDefaults) {
  const MachineSpec cfg = paper_machine(4, 16 * 1024);
  EXPECT_EQ(cfg.num_procs, 64u);
  EXPECT_EQ(cfg.procs_per_cluster, 4u);
  EXPECT_EQ(cfg.cache.line_bytes, 64u);
  EXPECT_EQ(cfg.cache.associativity, 0u);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Experiment, BenchOptionsParse) {
  const char* argv1[] = {"bench", "--paper"};
  auto o1 = BenchOptions::parse(2, const_cast<char**>(argv1));
  EXPECT_EQ(o1.scale, ProblemScale::Paper);
  const char* argv2[] = {"bench", "--test", "--procs", "16"};
  auto o2 = BenchOptions::parse(4, const_cast<char**>(argv2));
  EXPECT_EQ(o2.scale, ProblemScale::Test);
  EXPECT_EQ(o2.num_procs, 16u);
  auto o3 = BenchOptions::parse(1, nullptr);
  EXPECT_EQ(o3.scale, ProblemScale::Default);
}

TEST(Experiment, BenchOptionsRejectBadProcs) {
  const char* zero[] = {"bench", "--procs", "0"};
  EXPECT_THROW(BenchOptions::parse_checked(3, const_cast<char**>(zero)),
               ConfigError);
  const char* negative[] = {"bench", "--procs", "-4"};
  EXPECT_THROW(BenchOptions::parse_checked(3, const_cast<char**>(negative)),
               ConfigError);
  const char* text[] = {"bench", "--procs", "abc"};
  EXPECT_THROW(BenchOptions::parse_checked(3, const_cast<char**>(text)),
               ConfigError);
  const char* trailing[] = {"bench", "--procs", "16x"};
  EXPECT_THROW(BenchOptions::parse_checked(3, const_cast<char**>(trailing)),
               ConfigError);
  const char* missing[] = {"bench", "--procs"};
  EXPECT_THROW(BenchOptions::parse_checked(2, const_cast<char**>(missing)),
               ConfigError);
  const char* huge[] = {"bench", "--procs", "999999"};
  EXPECT_THROW(BenchOptions::parse_checked(3, const_cast<char**>(huge)),
               ConfigError);
}

TEST(Experiment, BenchOptionsRejectUnknownFlag) {
  const char* argv[] = {"bench", "--bogus"};
  try {
    BenchOptions::parse_checked(2, const_cast<char**>(argv));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--bogus"), std::string::npos);
  }
}

TEST(Experiment, BenchOptionsParseCheckedAcceptsValidInput) {
  const char* argv[] = {"bench", "--paper", "--procs", "16"};
  const auto o = BenchOptions::parse_checked(4, const_cast<char**>(argv));
  EXPECT_EQ(o.scale, ProblemScale::Paper);
  EXPECT_EQ(o.num_procs, 16u);
}

TEST(Experiment, CsvHasHeaderAndRows) {
  std::ostringstream os;
  write_csv(os, {fake_result(1, 10, 5, 0, 1), fake_result(2, 10, 3, 1, 1)});
  const std::string s = os.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
  EXPECT_NE(s.find("app,scale,procs,ppc"), std::string::npos);
  EXPECT_NE(s.find("fake"), std::string::npos);
}

TEST(Experiment, CsvCarriesProblemScale) {
  SimResult paper = fake_result(1, 10, 5, 0, 1);
  paper.scale = ProblemScale::Paper;
  SimResult test = fake_result(2, 10, 3, 1, 1);
  test.scale = ProblemScale::Test;
  std::ostringstream os;
  write_csv(os, {paper, test});
  const std::string s = os.str();
  EXPECT_NE(s.find("fake,paper,"), std::string::npos);
  EXPECT_NE(s.find("fake,test,"), std::string::npos);
  EXPECT_EQ(s.find("default"), std::string::npos)
      << "scale must come from the result, not a hard-coded literal";
}

TEST(Experiment, CsvSkipsFailedRowsAndFailureTableIsQuietWhenClean) {
  SimResult ok = fake_result(1, 10, 5, 0, 1);
  SimResult bad = fake_result(2, 10, 3, 1, 1);
  bad.ok = false;
  bad.error_kind = "deadlock";
  bad.error = "deadlock: stuck";
  std::ostringstream csv;
  write_csv(csv, {ok, bad});
  const std::string s = csv.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2)
      << "header plus the one successful row";
  std::ostringstream clean;
  EXPECT_EQ(write_failures(clean, {ok}), 0u);
  EXPECT_TRUE(clean.str().empty());
  std::ostringstream dirty;
  EXPECT_EQ(write_failures(dirty, {ok, bad}), 1u);
  EXPECT_NE(dirty.str().find("deadlock"), std::string::npos);
}

TEST(Experiment, SweepRunsEveryClusterSize) {
  auto sweep = sweep_clusters(
      [] { return make_app("fft", ProblemScale::Test); }, 0, {1, 2});
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_EQ(sweep[0].config.procs_per_cluster, 1u);
  EXPECT_EQ(sweep[1].config.procs_per_cluster, 2u);
  EXPECT_EQ(sweep[0].totals.reads, sweep[1].totals.reads)
      << "same program, same reference count";
}

}  // namespace
}  // namespace csim
