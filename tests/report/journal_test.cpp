// The sweep journal's record codec and its hardened loader: every corruption
// shape a crash (or the fault injector) can produce must degrade into a
// warning + re-simulation, never a wrong or missing answer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/obs/manifest.hpp"
#include "src/report/journal.hpp"

namespace csim {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = (fs::temp_directory_path() /
            ("csim_journal_test_" + tag + "_" +
             std::to_string(static_cast<unsigned long>(::getpid()))))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

/// A populated record with every field exercised (non-trivial vectors).
JournalRecord sample_record(std::uint64_t salt = 0) {
  JournalRecord rec;
  rec.config_digest = 0x1234'5678'9abc'def0ULL + salt;
  rec.result_digest = 0x0fed'cba9'8765'4321ULL ^ salt;
  rec.app_name = "fft";
  rec.scale = ProblemScale::Test;
  rec.wall_time = 14595 + salt;
  rec.events = 123456;
  rec.host_seconds = 0.25;
  rec.attempts = 2;
  rec.totals.reads = 15872;
  rec.totals.writes = 15872;
  rec.totals.read_misses = 512;
  rec.totals.by_class[0] = 7;
  rec.per_proc.resize(4);
  rec.per_proc[1].cpu = 1000;
  rec.per_proc[2].sync = 99;
  rec.per_cluster.resize(2);
  rec.per_cluster[0].invalidations = 3;
  return rec;
}

void expect_equal(const JournalRecord& a, const JournalRecord& b) {
  EXPECT_EQ(a.config_digest, b.config_digest);
  EXPECT_EQ(a.result_digest, b.result_digest);
  EXPECT_EQ(a.app_name, b.app_name);
  EXPECT_EQ(a.scale, b.scale);
  EXPECT_EQ(a.wall_time, b.wall_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.host_seconds, b.host_seconds);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.totals, b.totals);
  ASSERT_EQ(a.per_proc.size(), b.per_proc.size());
  for (std::size_t i = 0; i < a.per_proc.size(); ++i) {
    EXPECT_EQ(a.per_proc[i], b.per_proc[i]) << "per_proc " << i;
  }
  ASSERT_EQ(a.per_cluster.size(), b.per_cluster.size());
  for (std::size_t i = 0; i < a.per_cluster.size(); ++i) {
    EXPECT_EQ(a.per_cluster[i], b.per_cluster[i]) << "per_cluster " << i;
  }
}

TEST(JournalCodec, RoundTripsEveryField) {
  const JournalRecord rec = sample_record();
  const JournalLoad load =
      decode_journal_records(encode_journal_record(rec), "mem");
  EXPECT_TRUE(load.warnings.empty());
  ASSERT_EQ(load.records.size(), 1u);
  expect_equal(load.records[0], rec);
}

TEST(JournalCodec, DecodesConcatenatedRecords) {
  const std::string bytes = encode_journal_record(sample_record(1)) +
                            encode_journal_record(sample_record(2));
  const JournalLoad load = decode_journal_records(bytes, "mem");
  EXPECT_TRUE(load.warnings.empty());
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0].wall_time, sample_record(1).wall_time);
  EXPECT_EQ(load.records[1].wall_time, sample_record(2).wall_time);
}

TEST(JournalCodec, EmptyBufferIsEmptyJournal) {
  const JournalLoad load = decode_journal_records("", "mem");
  EXPECT_TRUE(load.records.empty());
  EXPECT_TRUE(load.warnings.empty());
}

// --- Corruption shapes ------------------------------------------------------

TEST(JournalHardening, TruncatedHeaderIsSkippedWithWarning) {
  const std::string bytes = encode_journal_record(sample_record());
  const JournalLoad load =
      decode_journal_records(std::string_view(bytes).substr(0, 10), "mem");
  EXPECT_TRUE(load.records.empty());
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("truncated frame header"),
            std::string::npos);
}

TEST(JournalHardening, TruncatedPayloadIsSkippedWithWarning) {
  const std::string bytes = encode_journal_record(sample_record());
  // Cut mid-payload: the frame header survives but declares more bytes than
  // remain — the exact shape a killed append would leave without atomicity.
  const JournalLoad load = decode_journal_records(
      std::string_view(bytes).substr(0, bytes.size() / 2), "mem");
  EXPECT_TRUE(load.records.empty());
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("truncated record"), std::string::npos);
}

TEST(JournalHardening, ChecksumMismatchIsSkippedWithWarning) {
  std::string bytes = encode_journal_record(sample_record());
  bytes[bytes.size() - 3] ^= 0x40;  // flip a payload bit
  const JournalLoad load = decode_journal_records(bytes, "mem");
  EXPECT_TRUE(load.records.empty());
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("checksum mismatch"), std::string::npos);
}

TEST(JournalHardening, RecordAfterChecksumFailureStillLoads) {
  // A bit flip in record 1's payload must not take record 2 down with it:
  // the frame length still delimits the damage.
  std::string first = encode_journal_record(sample_record(1));
  first[first.size() - 3] ^= 0x01;
  const std::string bytes = first + encode_journal_record(sample_record(2));
  const JournalLoad load = decode_journal_records(bytes, "mem");
  ASSERT_EQ(load.records.size(), 1u);
  expect_equal(load.records[0], sample_record(2));
  EXPECT_EQ(load.warnings.size(), 1u);
}

TEST(JournalHardening, BadMagicDropsTheRestOfTheFile) {
  std::string bytes = "GARBAGE" + encode_journal_record(sample_record());
  const JournalLoad load = decode_journal_records(bytes, "mem");
  EXPECT_TRUE(load.records.empty());
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("bad magic"), std::string::npos);
}

TEST(JournalHardening, UnsupportedVersionIsSkippedWithWarning) {
  std::string bytes = encode_journal_record(sample_record());
  bytes[4] = 9;  // version byte
  const JournalLoad load = decode_journal_records(bytes, "mem");
  EXPECT_TRUE(load.records.empty());
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("unsupported version 9"), std::string::npos);
}

TEST(JournalHardening, AbsurdPayloadLengthIsTruncationNotAllocation) {
  std::string bytes = encode_journal_record(sample_record());
  for (int i = 5; i < 13; ++i) bytes[i] = '\xff';  // payload_len = 2^64 - 1
  const JournalLoad load = decode_journal_records(bytes, "mem");
  EXPECT_TRUE(load.records.empty());
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("truncated record"), std::string::npos);
}

TEST(JournalHardening, DuplicateDigestFirstRecordWins) {
  JournalRecord second = sample_record();
  second.wall_time = 777;  // same digest key, different payload
  const std::string bytes = encode_journal_record(sample_record()) +
                            encode_journal_record(second);
  const JournalLoad load = decode_journal_records(bytes, "mem");
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].wall_time, sample_record().wall_time);
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("duplicate record"), std::string::npos);
}

// --- Directory-level append / load ------------------------------------------

TEST(JournalDir, AppendThenLoadRoundTrips) {
  const TempDir tmp("append");
  append_journal_record(tmp.path(), sample_record(1));
  append_journal_record(tmp.path(), sample_record(2));
  const JournalLoad load = load_journal(tmp.path());
  EXPECT_TRUE(load.warnings.empty());
  ASSERT_EQ(load.records.size(), 2u);
}

TEST(JournalDir, AppendOverwritesTheSameRowAtomically) {
  const TempDir tmp("overwrite");
  append_journal_record(tmp.path(), sample_record());
  JournalRecord updated = sample_record();
  updated.attempts = 5;
  append_journal_record(tmp.path(), updated);
  const JournalLoad load = load_journal(tmp.path());
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].attempts, 5u);
  // No stray temp files: the atomic writer renamed or cleaned up.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(tmp.path())) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(JournalDir, MissingDirectoryIsEmptyJournal) {
  const JournalLoad load = load_journal("/nonexistent/journal/dir");
  EXPECT_TRUE(load.records.empty());
  EXPECT_TRUE(load.warnings.empty());
}

TEST(JournalDir, CreatesTheDirectoryOnFirstAppend) {
  const TempDir tmp("create");
  const std::string nested = tmp.path() + "/a/b";
  append_journal_record(nested, sample_record());
  EXPECT_EQ(load_journal(nested).records.size(), 1u);
}

TEST(JournalDir, CorruptFileSkippedHealthySiblingLoads) {
  const TempDir tmp("mixed");
  append_journal_record(tmp.path(), sample_record(1));
  const JournalRecord bad = sample_record(2);
  {
    const std::string bytes = encode_journal_record(bad);
    std::ofstream os(
        tmp.path() + "/" + obs::digest_hex(bad.config_digest) + ".csj",
        std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() / 3));  // torn
  }
  const JournalLoad load = load_journal(tmp.path());
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].config_digest, sample_record(1).config_digest);
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("truncated"), std::string::npos);
}

TEST(JournalDir, ZeroLengthFileSkippedWithWarning) {
  // A crash between creating a record file and its first write leaves a
  // zero-length .csj: the loader must treat it like a truncated record —
  // warn and re-simulate — not error or silently drop the warning.
  const TempDir tmp("zerolen");
  append_journal_record(tmp.path(), sample_record(1));
  {
    std::ofstream os(tmp.path() + "/0000000000000002.csj", std::ios::binary);
  }
  const JournalLoad load = load_journal(tmp.path());
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].config_digest, sample_record(1).config_digest);
  ASSERT_EQ(load.warnings.size(), 1u);
  EXPECT_NE(load.warnings[0].find("empty record file"), std::string::npos);
}

// --- Result conversion ------------------------------------------------------

TEST(JournalResult, FromResultRequiresOk) {
  SimResult r;
  r.ok = false;
  EXPECT_THROW((void)journal_record_from_result(r, 1), std::logic_error);
}

TEST(JournalResult, ResultRoundTripPreservesDigests) {
  SimResult r;
  r.config.num_procs = 16;
  r.config.procs_per_cluster = 4;
  r.app_name = "fft";
  r.scale = ProblemScale::Test;
  r.wall_time = 4242;
  r.events = 999;
  r.host_seconds = 0.125;
  r.totals.reads = 100;
  r.per_proc.resize(16);
  r.per_cluster.resize(4);
  r.per_proc[3].cpu = 55;

  const JournalRecord rec = journal_record_from_result(r, 3);
  EXPECT_EQ(rec.config_digest,
            obs::config_digest(r.config, r.app_name, r.scale));
  EXPECT_EQ(rec.result_digest, obs::result_digest(r));
  EXPECT_EQ(rec.attempts, 3u);

  const SimResult back = journal_record_to_result(rec, r.config);
  EXPECT_TRUE(back.ok);
  // The reconstituted row hashes to the same result digest — the exact check
  // run_sweep --resume performs before trusting a record.
  EXPECT_EQ(obs::result_digest(back), rec.result_digest);
}

}  // namespace
}  // namespace csim
