// RunSpec (src/report/run_spec.hpp): the one row-assembly path shared by
// csim_cli flags and the service JSON protocol. The round-trip tests pin
// the contract that makes the two drivers equivalent: serializing a spec
// and parsing it back yields the same spec, and the same spec always
// yields the same MachineSpec rows.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/error.hpp"
#include "src/report/json.hpp"
#include "src/report/run_spec.hpp"

namespace csim {
namespace {

RunSpec roundtrip(const RunSpec& spec) {
  return RunSpec::from_json(json::parse(spec.to_json()));
}

TEST(RunSpec, DefaultRoundTripsThroughJson) {
  const RunSpec spec;
  EXPECT_EQ(roundtrip(spec), spec);
}

TEST(RunSpec, EveryFieldRoundTripsThroughJson) {
  RunSpec spec;
  spec.app = "barnes";
  spec.scale = ProblemScale::Paper;
  spec.procs = 32;
  spec.ppcs = {2, 8};
  spec.cache_kb = 16;
  spec.assoc = 4;
  spec.line_bytes = 32;
  spec.style = ClusterStyle::SharedMemory;
  spec.quantum = 1;
  spec.hit_costs = true;
  spec.parallel.workers = 4;
  spec.parallel.horizon_override = 60;
  EXPECT_EQ(roundtrip(spec), spec);
}

TEST(RunSpec, ParallelOmittedFromJsonWhenDisabled) {
  // A sequential spec serializes without the parallel keys, so documents
  // written before the parallel engine existed and documents written now
  // are byte-compatible in both directions.
  const RunSpec spec;
  EXPECT_EQ(spec.to_json().find("parallel"), std::string::npos);
  RunSpec par = spec;
  par.parallel.workers = 2;
  EXPECT_NE(par.to_json().find("\"parallel\":2"), std::string::npos);
  EXPECT_EQ(par.to_json().find("par_horizon"), std::string::npos);
}

TEST(RunSpec, ConfigsBuildOneRowPerClusterSize) {
  RunSpec spec;
  spec.procs = 16;
  spec.ppcs = {1, 4};
  spec.cache_kb = 16;
  spec.parallel.workers = 4;
  const std::vector<MachineSpec> rows = spec.configs();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].procs_per_cluster, 1u);
  EXPECT_EQ(rows[1].procs_per_cluster, 4u);
  for (const MachineSpec& cfg : rows) {
    EXPECT_EQ(cfg.num_procs, 16u);
    EXPECT_EQ(cfg.cache.per_proc_bytes, 16u * 1024);
    EXPECT_EQ(cfg.parallel.workers, 4u);
  }
}

TEST(RunSpec, SameSpecSameRows) {
  // The CLI and the service must agree row-for-row when given the same
  // fields; MachineSpec equality is the strongest form of that statement.
  RunSpec spec;
  spec.app = "fft";
  spec.cache_kb = 16;
  spec.parallel.workers = 2;
  const RunSpec again = roundtrip(spec);
  EXPECT_EQ(spec.configs(), again.configs());
}

TEST(RunSpec, FromJsonRejectsContradictions) {
  EXPECT_THROW((void)RunSpec::from_json(json::parse("{\"app\": \"nope\"}")),
               ConfigError);
  EXPECT_THROW(
      (void)RunSpec::from_json(json::parse("{\"par_horizon\": 60}")),
      ConfigError);
  EXPECT_THROW((void)RunSpec::from_json(json::parse("7")), ConfigError);
}

}  // namespace
}  // namespace csim
