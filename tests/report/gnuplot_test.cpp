#include "src/report/gnuplot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace csim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(Gnuplot, WritesDataAndScript) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "csim_fig").string();
  std::vector<FigureBar> bars;
  bars.push_back(FigureBar{"1p", TimeBuckets{60, 30, 0, 10}, false});
  bars.push_back(FigureBar{"2p", TimeBuckets{60, 15, 5, 10}, false});
  write_gnuplot_figure(base, "test figure", bars);

  const std::string dat = slurp(base + ".dat");
  EXPECT_NE(dat.find("\"1p\" 60 30 0 10"), std::string::npos);
  EXPECT_NE(dat.find("\"2p\" 60 15 5 10"), std::string::npos);
  const std::string gp = slurp(base + ".gp");
  EXPECT_NE(gp.find("rowstacked"), std::string::npos);
  EXPECT_NE(gp.find("test figure"), std::string::npos);
  std::remove((base + ".dat").c_str());
  std::remove((base + ".gp").c_str());
}

TEST(Gnuplot, GroupsRenormalize) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "csim_fig2").string();
  std::vector<FigureBar> bars;
  bars.push_back(FigureBar{"a", TimeBuckets{200, 0, 0, 0}, true});
  bars.push_back(FigureBar{"b", TimeBuckets{50, 0, 0, 0}, true});
  write_gnuplot_figure(base, "t", bars);
  const std::string dat = slurp(base + ".dat");
  EXPECT_NE(dat.find("\"a\" 100 0 0 0"), std::string::npos);
  EXPECT_NE(dat.find("\"b\" 100 0 0 0"), std::string::npos);
  std::remove((base + ".dat").c_str());
  std::remove((base + ".gp").c_str());
}

TEST(Gnuplot, UnwritablePathThrows) {
  EXPECT_THROW(write_gnuplot_figure("/nonexistent-dir/x", "t", {}),
               std::runtime_error);
}

}  // namespace
}  // namespace csim
