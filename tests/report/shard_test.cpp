// Sharding algebra (src/report/service.hpp): the k/N spec parser, the pure
// digest partition, shard selection over real sweep configs, the shard
// manifest codec, and the merge validator that refuses to recombine
// artifacts that are not disjoint, complete, and schema-identical.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/core/error.hpp"
#include "src/obs/manifest.hpp"
#include "src/report/experiment.hpp"
#include "src/report/service.hpp"

namespace csim {
namespace {

namespace fs = std::filesystem;

using serve::ShardManifest;
using serve::ShardRowRef;
using serve::ShardSpec;

/// A fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = (fs::temp_directory_path() /
            ("csim_shard_test_" + tag + "_" +
             std::to_string(static_cast<unsigned long>(::getpid()))))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

// --- parse_shard ------------------------------------------------------------

TEST(ShardSpecParse, AcceptsValidSpecs) {
  const ShardSpec a = serve::parse_shard("0/1");
  EXPECT_EQ(a.index, 0u);
  EXPECT_EQ(a.count, 1u);
  EXPECT_FALSE(a.active());
  const ShardSpec b = serve::parse_shard("2/3");
  EXPECT_EQ(b.index, 2u);
  EXPECT_EQ(b.count, 3u);
  EXPECT_TRUE(b.active());
  EXPECT_EQ(b.label(), "2/3");
}

TEST(ShardSpecParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)serve::parse_shard("3/3"), ConfigError);   // k == N
  EXPECT_THROW((void)serve::parse_shard("4/3"), ConfigError);   // k > N
  EXPECT_THROW((void)serve::parse_shard("1/0"), ConfigError);   // N == 0
  EXPECT_THROW((void)serve::parse_shard("1"), ConfigError);     // no slash
  EXPECT_THROW((void)serve::parse_shard("a/b"), ConfigError);   // not numbers
  EXPECT_THROW((void)serve::parse_shard("1/"), ConfigError);    // empty N
  EXPECT_THROW((void)serve::parse_shard("/2"), ConfigError);    // empty k
  EXPECT_THROW((void)serve::parse_shard("-1/2"), ConfigError);  // negative
  EXPECT_THROW((void)serve::parse_shard("0/9999"), ConfigError);  // > 4096
  EXPECT_THROW((void)serve::parse_shard(""), ConfigError);
}

// --- shard_of ---------------------------------------------------------------

TEST(ShardPartition, EveryDigestLandsInExactlyOneShard) {
  // Synthetic digests with FNV-like spread; the partition is a pure function,
  // so one pass per N suffices to prove disjointness + completeness.
  std::vector<std::uint64_t> digests;
  std::uint64_t d = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 500; ++i) {
    d = (d ^ static_cast<std::uint64_t>(i)) * 0x100000001b3ULL;
    digests.push_back(d);
  }
  for (unsigned n : {1u, 2u, 3u, 5u, 8u}) {
    std::size_t covered = 0;
    for (std::uint64_t digest : digests) {
      unsigned owners = 0;
      for (unsigned k = 0; k < n; ++k) {
        owners += serve::shard_of(digest, n) == k;
      }
      EXPECT_EQ(owners, 1u) << "digest " << digest << " N " << n;
      covered += owners;
    }
    EXPECT_EQ(covered, digests.size());
  }
}

TEST(ShardPartition, IsDeterministic) {
  for (std::uint64_t d : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL}) {
    EXPECT_EQ(serve::shard_of(d, 3), serve::shard_of(d, 3));
    EXPECT_EQ(serve::shard_of(d, 1), 0u);
  }
}

// --- select_shard -----------------------------------------------------------

std::vector<MachineSpec> sweep_configs(const std::vector<unsigned>& ppcs) {
  std::vector<MachineSpec> configs;
  for (unsigned ppc : ppcs) {
    configs.push_back(MachineSpecBuilder{}
                          .procs(16)
                          .procs_per_cluster(ppc)
                          .cache_kb(4)
                          .build());
  }
  return configs;
}

TEST(ShardSelect, ShardsPartitionTheSweep) {
  const std::vector<MachineSpec> configs =
      sweep_configs({1, 2, 4, 8, 16, 1, 2, 4});  // duplicates share digests
  std::set<std::size_t> seen;
  std::size_t kept = 0;
  for (unsigned k = 0; k < 3; ++k) {
    const serve::ShardSelection sel =
        serve::select_shard(configs, "fft", ProblemScale::Test, {k, 3});
    EXPECT_EQ(sel.rows_total, configs.size());
    ASSERT_EQ(sel.indices.size(), sel.digests.size());
    for (std::size_t i = 0; i < sel.indices.size(); ++i) {
      EXPECT_TRUE(seen.insert(sel.indices[i]).second)
          << "row " << sel.indices[i] << " claimed twice";
      EXPECT_EQ(serve::shard_of(sel.digests[i], 3), k);
      EXPECT_EQ(sel.digests[i],
                obs::config_digest(configs[sel.indices[i]], "fft",
                                   ProblemScale::Test));
    }
    kept += sel.indices.size();
  }
  EXPECT_EQ(kept, configs.size());
}

TEST(ShardSelect, SingleShardKeepsEverything) {
  const std::vector<MachineSpec> configs = sweep_configs({1, 2, 4});
  const serve::ShardSelection sel =
      serve::select_shard(configs, "fft", ProblemScale::Test, {0, 1});
  EXPECT_EQ(sel.indices.size(), configs.size());
}

TEST(ShardSelect, EmptyShardIsValid) {
  // One row, many shards: N-1 of them are legitimately empty.
  const std::vector<MachineSpec> configs = sweep_configs({4});
  const std::uint64_t d =
      obs::config_digest(configs[0], "fft", ProblemScale::Test);
  const unsigned owner = serve::shard_of(d, 7);
  for (unsigned k = 0; k < 7; ++k) {
    const serve::ShardSelection sel =
        serve::select_shard(configs, "fft", ProblemScale::Test, {k, 7});
    EXPECT_EQ(sel.indices.size(), k == owner ? 1u : 0u);
    EXPECT_EQ(sel.rows_total, 1u);
  }
}

// --- shard manifest codec ---------------------------------------------------

ShardManifest sample_manifest() {
  ShardManifest m;
  m.shard = {1, 3};
  m.rows_total = 5;
  m.csv_path = "s1.csv";
  m.rows.push_back({0, 0x0102030405060708ULL, 0});
  m.rows.push_back({3, 0x1122334455667788ULL, -1});  // failed row
  return m;
}

TEST(ShardManifestCodec, RoundTrips) {
  const ShardManifest m = sample_manifest();
  const ShardManifest back =
      serve::parse_shard_manifest(serve::write_shard_manifest(m), "mem");
  EXPECT_EQ(back.shard.index, m.shard.index);
  EXPECT_EQ(back.shard.count, m.shard.count);
  EXPECT_EQ(back.rows_total, m.rows_total);
  EXPECT_EQ(back.csv_path, m.csv_path);
  ASSERT_EQ(back.rows.size(), m.rows.size());
  for (std::size_t i = 0; i < m.rows.size(); ++i) {
    EXPECT_EQ(back.rows[i].index, m.rows[i].index);
    EXPECT_EQ(back.rows[i].digest, m.rows[i].digest);
    EXPECT_EQ(back.rows[i].csv_line, m.rows[i].csv_line);
  }
}

TEST(ShardManifestCodec, RejectsWrongSchemaAndGarbage) {
  EXPECT_THROW((void)serve::parse_shard_manifest("not json", "mem"),
               ConfigError);
  EXPECT_THROW((void)serve::parse_shard_manifest("{\"schema\": \"x\"}", "mem"),
               ConfigError);
  std::string doc = serve::write_shard_manifest(sample_manifest());
  doc.replace(doc.find("csim.shard/1"), 12, "csim.shard/9");
  EXPECT_THROW((void)serve::parse_shard_manifest(doc, "mem"), ConfigError);
}

// --- merge ------------------------------------------------------------------

/// Digests whose low bits place them in a known shard of 2: shard_of is a
/// plain modulus, so even digests go to shard 0 and odd to shard 1.
constexpr std::uint64_t kEven1 = 0xa0;
constexpr std::uint64_t kEven2 = 0xb2;
constexpr std::uint64_t kOdd1 = 0xc1;

std::vector<ShardManifest> two_shards() {
  ShardManifest s0;
  s0.shard = {0, 2};
  s0.rows_total = 3;
  s0.csv_path = "s0.csv";
  s0.rows.push_back({0, kEven1, 0});
  s0.rows.push_back({2, kEven2, 1});
  ShardManifest s1;
  s1.shard = {1, 2};
  s1.rows_total = 3;
  s1.csv_path = "s1.csv";
  s1.rows.push_back({1, kOdd1, 0});
  return {s0, s1};
}

TEST(ShardMerge, ReassemblesGlobalOrder) {
  const std::string merged = serve::merge_shard_csvs(
      two_shards(), {"h\nrow0\nrow2\n", "h\nrow1\n"});
  EXPECT_EQ(merged, "h\nrow0\nrow1\nrow2\n");
}

TEST(ShardMerge, SkipsFailedRowsLikeWriteCsv) {
  std::vector<ShardManifest> shards = two_shards();
  shards[1].rows[0].csv_line = -1;  // row 1 failed on shard 1
  const std::string merged =
      serve::merge_shard_csvs(shards, {"h\nrow0\nrow2\n", "h\n"});
  EXPECT_EQ(merged, "h\nrow0\nrow2\n");
}

TEST(ShardMerge, RejectsDuplicateShard) {
  std::vector<ShardManifest> shards = two_shards();
  shards[1] = shards[0];
  EXPECT_THROW(
      (void)serve::merge_shard_csvs(shards, {"h\nrow0\nrow2\n", "h\nrow0\nrow2\n"}),
      ConfigError);
}

TEST(ShardMerge, RejectsMissingShard) {
  std::vector<ShardManifest> shards = {two_shards()[0]};
  EXPECT_THROW((void)serve::merge_shard_csvs(shards, {"h\nrow0\nrow2\n"}),
               ConfigError);
}

TEST(ShardMerge, RejectsHeaderMismatch) {
  EXPECT_THROW((void)serve::merge_shard_csvs(
                   two_shards(), {"h\nrow0\nrow2\n", "DIFFERENT\nrow1\n"}),
               ConfigError);
}

TEST(ShardMerge, RejectsDigestInWrongShard) {
  std::vector<ShardManifest> shards = two_shards();
  shards[1].rows[0].digest = kEven1 + 2;  // even: belongs to shard 0
  EXPECT_THROW(
      (void)serve::merge_shard_csvs(shards, {"h\nrow0\nrow2\n", "h\nrow1\n"}),
      ConfigError);
}

TEST(ShardMerge, RejectsOverlappingDigest) {
  std::vector<ShardManifest> shards = two_shards();
  shards[0].rows[1].digest = kEven1;  // same digest twice in shard 0
  EXPECT_THROW(
      (void)serve::merge_shard_csvs(shards, {"h\nrow0\nrow2\n", "h\nrow1\n"}),
      ConfigError);
}

TEST(ShardMerge, RejectsRowIndexClaimedTwice) {
  std::vector<ShardManifest> shards = two_shards();
  shards[1].rows[0].index = 0;  // shard 0 already owns global row 0
  EXPECT_THROW(
      (void)serve::merge_shard_csvs(shards, {"h\nrow0\nrow2\n", "h\nrow1\n"}),
      ConfigError);
}

TEST(ShardMerge, RejectsUncoveredRowIndex) {
  std::vector<ShardManifest> shards = two_shards();
  shards[0].rows_total = 4;
  shards[1].rows_total = 4;  // row 3 exists but no shard claims it
  EXPECT_THROW(
      (void)serve::merge_shard_csvs(shards, {"h\nrow0\nrow2\n", "h\nrow1\n"}),
      ConfigError);
}

TEST(ShardMerge, RejectsBadCsvLineReferences) {
  std::vector<ShardManifest> shards = two_shards();
  shards[0].rows[1].csv_line = 7;  // beyond the CSV's data lines
  EXPECT_THROW(
      (void)serve::merge_shard_csvs(shards, {"h\nrow0\nrow2\n", "h\nrow1\n"}),
      ConfigError);
  shards = two_shards();
  shards[0].rows[1].csv_line = 0;  // line 0 referenced twice, line 1 orphaned
  EXPECT_THROW(
      (void)serve::merge_shard_csvs(shards, {"h\nrow0\nrow2\n", "h\nrow1\n"}),
      ConfigError);
}

// --- end-to-end: shard + merge == unsharded ---------------------------------

TEST(ShardMerge, ThreeWayShardMergeIsByteExact) {
  // The acceptance criterion in miniature: shard a real sweep three ways,
  // build each shard's artifacts exactly as csim_cli --shard-out does, merge,
  // and demand the bytes of the unsharded CSV. The runs share a journal —
  // that is what makes even the host-timing columns (wall_seconds,
  // sim_refs_per_sec) bit-exact across processes; the deterministic columns
  // need no help (docs/SERVICE.md).
  const TempDir tmp("merge_e2e");
  SweepRequest base;
  base.make_app = [] { return make_app("fft", ProblemScale::Test); };
  for (unsigned ppc : {1u, 2u, 4u, 8u}) {
    base.configs.push_back(
        MachineSpecBuilder{}.procs(16).procs_per_cluster(ppc).cache_kb(4).build());
  }
  base.policy.journal_dir = tmp.path();
  const SweepResult golden = run_sweep(base);
  std::ostringstream golden_csv;
  write_csv(golden_csv, golden.rows);

  std::vector<ShardManifest> manifests;
  std::vector<std::string> csvs;
  for (unsigned k = 0; k < 3; ++k) {
    const serve::ShardSelection sel = serve::select_shard(
        base.configs, "fft", ProblemScale::Test, {k, 3});
    SweepRequest req;
    req.make_app = base.make_app;
    for (std::size_t i : sel.indices) req.configs.push_back(base.configs[i]);
    req.policy.journal_dir = tmp.path();
    req.policy.resume = true;
    const SweepResult part = run_sweep(req);
    std::ostringstream csv;
    write_csv(csv, part.rows);
    ShardManifest m;
    m.shard = {k, 3};
    m.rows_total = sel.rows_total;
    m.csv_path = "s" + std::to_string(k) + ".csv";
    long line = 0;
    for (std::size_t j = 0; j < part.rows.size(); ++j) {
      m.rows.push_back(
          {sel.indices[j], sel.digests[j], part.rows[j].ok ? line++ : -1});
    }
    manifests.push_back(std::move(m));
    csvs.push_back(csv.str());
  }
  EXPECT_EQ(serve::merge_shard_csvs(manifests, csvs), golden_csv.str());
}

}  // namespace
}  // namespace csim
