// Run-manifest tests: digest stability across identical runs (the
// determinism-suite extension), digest sensitivity to what actually changed,
// host-time exclusion, and manifest JSON structure.
#include "src/obs/manifest.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"
#include "src/obs/build_info.hpp"
#include "src/report/experiment.hpp"
#include "tests/obs/json_checker.hpp"

namespace csim {
namespace {

SimResult run_fft(unsigned ppc, ClusterStyle style) {
  auto app = make_app("fft", ProblemScale::Test);
  MachineSpec cfg = paper_machine(ppc, 16 * 1024);
  cfg.cluster_style = style;
  return simulate(*app, cfg);
}

TEST(RunManifest, DigestStableAcrossIdenticalRuns) {
  const SimResult a = run_fft(8, ClusterStyle::SharedCache);
  const SimResult b = run_fft(8, ClusterStyle::SharedCache);
  EXPECT_EQ(obs::result_digest(a), obs::result_digest(b));
  EXPECT_EQ(obs::sweep_digest({a}), obs::sweep_digest({b}));
}

TEST(RunManifest, DigestIgnoresHostTime) {
  SimResult a = run_fft(8, ClusterStyle::SharedCache);
  SimResult b = a;
  b.host_seconds = a.host_seconds + 123.0;
  EXPECT_EQ(obs::result_digest(a), obs::result_digest(b));
}

TEST(RunManifest, DigestDiscriminatesConfigAndResults) {
  const SimResult base = run_fft(8, ClusterStyle::SharedCache);
  EXPECT_NE(obs::result_digest(base),
            obs::result_digest(run_fft(1, ClusterStyle::SharedCache)));
  EXPECT_NE(obs::result_digest(base),
            obs::result_digest(run_fft(8, ClusterStyle::SharedMemory)));
  SimResult tweaked = base;
  tweaked.wall_time += 1;
  EXPECT_NE(obs::result_digest(base), obs::result_digest(tweaked));
  tweaked = base;
  tweaked.totals.read_misses += 1;
  EXPECT_NE(obs::result_digest(base), obs::result_digest(tweaked));
}

TEST(RunManifest, FailedRowsHashErrorKind) {
  SimResult failed;
  failed.ok = false;
  failed.app_name = "fft";
  failed.error_kind = "deadlock";
  SimResult other = failed;
  other.error_kind = "livelock";
  EXPECT_NE(obs::result_digest(failed), obs::result_digest(other));
}

TEST(RunManifest, DigestHexIs16LowercaseDigits) {
  EXPECT_EQ(obs::digest_hex(0), "0000000000000000");
  EXPECT_EQ(obs::digest_hex(0xDEADBEEFCAFEF00DULL), "deadbeefcafef00d");
}

TEST(RunManifest, ManifestJsonIsByteStableAndParses) {
  const SimResult a = run_fft(1, ClusterStyle::SharedCache);
  SimResult b = a;
  b.host_seconds = a.host_seconds * 2 + 1;  // host time may always differ

  std::ostringstream os1, os2;
  obs::write_run_manifest(os1, "test_tool", {a}, 1700000000);
  obs::write_run_manifest(os2, "test_tool", {b}, 1700000000);
  // Identical apart from host_seconds: strip that line and compare.
  std::string s1 = os1.str(), s2 = os2.str();
  const auto strip_host = [](std::string& s) {
    const std::size_t k = s.find("\"host_seconds\": ");
    ASSERT_NE(k, std::string::npos);
    const std::size_t comma = s.find(',', k);
    s.erase(k, comma - k);
  };
  strip_host(s1);
  strip_host(s2);
  EXPECT_EQ(s1, s2) << "manifest must be byte-stable modulo host time";

  const testjson::Value doc = testjson::parse(os1.str());
  EXPECT_EQ(doc.at("schema").str, "csim.run_manifest/3");
  EXPECT_EQ(doc.at("tool").str, "test_tool");
  EXPECT_EQ(doc.at("git").str, std::string(obs::git_describe()));
  EXPECT_EQ(doc.at("generated_unix").number, 1700000000.0);
  ASSERT_EQ(doc.at("rows").array.size(), 1u);
  const testjson::Value& row = doc.at("rows").array[0];
  EXPECT_EQ(row.at("app").str, "fft");
  EXPECT_TRUE(row.at("ok").boolean);
  EXPECT_EQ(row.at("wall_time").number, static_cast<double>(a.wall_time));
  EXPECT_EQ(row.at("digest").str, obs::digest_hex(obs::result_digest(a)));
  EXPECT_EQ(row.at("config").at("ppc").number, 1.0);
  EXPECT_EQ(doc.at("sweep_digest").str,
            obs::digest_hex(obs::sweep_digest({a})));
}

TEST(RunManifest, FailedRowCarriesErrorKindInsteadOfStats) {
  SimResult failed;
  failed.ok = false;
  failed.app_name = "bad\"app";  // exercises JSON escaping too
  failed.error_kind = "protocol";
  std::ostringstream os;
  obs::write_run_manifest(os, "t", {failed}, 0);
  const testjson::Value doc = testjson::parse(os.str());
  const testjson::Value& row = doc.at("rows").array[0];
  EXPECT_FALSE(row.at("ok").boolean);
  EXPECT_EQ(row.at("app").str, "bad\"app");
  EXPECT_EQ(row.at("error_kind").str, "protocol");
  EXPECT_FALSE(row.has("wall_time"));
}

TEST(RunManifest, WriteFileRejectsBadPath) {
  EXPECT_THROW(
      obs::write_run_manifest_file("/nonexistent/dir/m.json", "t",
                                   std::vector<SimResult>{}),
      std::runtime_error);
}

}  // namespace
}  // namespace csim
