// IntervalSampler tests: the exact-summation guarantee (column sums of the
// per-interval deltas equal the final cumulative counters), row alignment,
// and the CSV/JSON renderings.
#include "src/obs/interval_metrics.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"
#include "src/report/experiment.hpp"
#include "tests/obs/json_checker.hpp"

namespace csim {
namespace {

struct SampledRun {
  SimResult result;
  obs::IntervalSampler sampler;
  explicit SampledRun(Cycles interval) : sampler(interval) {}
};

SampledRun sampled_fft(Cycles interval, unsigned ppc, ClusterStyle style) {
  SampledRun out(interval);
  auto app = make_app("fft", ProblemScale::Test);
  MachineSpec cfg = paper_machine(ppc, 16 * 1024);
  cfg.cluster_style = style;
  out.result = simulate(*app, cfg, &out.sampler);
  return out;
}

std::size_t column_index(const obs::IntervalSampler& s,
                         const std::string& name) {
  const auto& cols = s.columns();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == name) return i;
  }
  ADD_FAILURE() << "missing column " << name;
  return 0;
}

std::uint64_t column_sum(const obs::IntervalSampler& s, std::size_t col) {
  std::uint64_t sum = 0;
  for (const auto& row : s.rows()) sum += row.delta[col];
  return sum;
}

TEST(IntervalSampler, RejectsZeroInterval) {
  EXPECT_THROW(obs::IntervalSampler(0), std::invalid_argument);
}

TEST(IntervalSampler, DeltasSumExactlyToFinalMissCounters) {
  for (const ClusterStyle style :
       {ClusterStyle::SharedCache, ClusterStyle::SharedMemory}) {
    const SampledRun run = sampled_fft(500, 8, style);
    ASSERT_TRUE(run.result.ok);
    const obs::IntervalSampler& s = run.sampler;
    ASSERT_GT(s.rows().size(), 1u) << "fft spans multiple 500-cycle intervals";

    const MissCounters& t = run.result.totals;
    const std::pair<const char*, std::uint64_t> expected[] = {
        {"reads", t.reads},
        {"writes", t.writes},
        {"read_hits", t.read_hits},
        {"write_hits", t.write_hits},
        {"read_misses", t.read_misses},
        {"write_misses", t.write_misses},
        {"upgrade_misses", t.upgrade_misses},
        {"merges", t.merges},
        {"cold_misses", t.cold_misses},
        {"invalidations", t.invalidations},
        {"evictions", t.evictions},
        {"snoop_transfers", t.snoop_transfers},
        {"cluster_memory_hits", t.cluster_memory_hits},
        {"bus_invalidations", t.bus_invalidations},
        {"events", run.result.events},
    };
    for (const auto& [name, want] : expected) {
      const std::size_t col = column_index(s, name);
      EXPECT_EQ(column_sum(s, col), want) << "column " << name;
      EXPECT_EQ(s.final_totals()[col], want) << "final " << name;
    }
  }
}

TEST(IntervalSampler, DeltasSumExactlyWhenHitFilterServesHits) {
  // Regression: the processor's generation-tagged hit filter bumps the
  // cluster's counters directly instead of calling into the memory system.
  // Those fast-path increments happen between sampler ticks, and must land
  // in the interval deltas exactly like memory-system hits — otherwise the
  // column sums drift from the final counters. lu at ppc 8 with caches that
  // hold the whole matrix re-touches each block line-by-line, so the filter
  // serves a large share of the hits here.
  for (const ClusterStyle style :
       {ClusterStyle::SharedCache, ClusterStyle::SharedMemory}) {
    obs::IntervalSampler sampler(500);
    auto app = make_app("lu", ProblemScale::Test);
    MachineSpec cfg = paper_machine(8, 256 * 1024);
    cfg.cluster_style = style;
    const SimResult result = simulate(*app, cfg, &sampler);
    ASSERT_TRUE(result.ok);
    ASSERT_GT(sampler.rows().size(), 1u);

    const MissCounters& t = result.totals;
    // The workload must actually exercise the hit path for this to regress
    // (lu's re-touches land mostly on the write side: each block line is
    // read once, then rewritten under the just-established hint).
    ASSERT_GT(t.read_hits + t.write_hits, (t.reads + t.writes) / 3)
        << "expected a hit-heavy run";
    const std::pair<const char*, std::uint64_t> expected[] = {
        {"reads", t.reads},
        {"writes", t.writes},
        {"read_hits", t.read_hits},
        {"write_hits", t.write_hits},
        {"read_misses", t.read_misses},
        {"write_misses", t.write_misses},
    };
    for (const auto& [name, want] : expected) {
      const std::size_t col = column_index(sampler, name);
      EXPECT_EQ(column_sum(sampler, col), want) << "column " << name;
      EXPECT_EQ(sampler.final_totals()[col], want) << "final " << name;
    }
  }
}

TEST(IntervalSampler, BucketDeltasSumToRawProcessorBuckets) {
  const SampledRun run = sampled_fft(1000, 4, ClusterStyle::SharedCache);
  ASSERT_TRUE(run.result.ok);
  // The sampler sees the raw buckets; SimResult adds the final-barrier sync
  // adjustment per processor afterwards, so compare against the raw sums:
  // cpu/load/merge are unadjusted and must match exactly.
  std::uint64_t cpu = 0, load = 0, merge = 0;
  for (const TimeBuckets& b : run.result.per_proc) {
    cpu += b.cpu;
    load += b.load;
    merge += b.merge;
  }
  EXPECT_EQ(column_sum(run.sampler, column_index(run.sampler, "t_cpu")), cpu);
  EXPECT_EQ(column_sum(run.sampler, column_index(run.sampler, "t_load")),
            load);
  EXPECT_EQ(column_sum(run.sampler, column_index(run.sampler, "t_merge")),
            merge);
}

TEST(IntervalSampler, RowsAlignToIntervalBoundaries) {
  const SampledRun run = sampled_fft(750, 8, ClusterStyle::SharedCache);
  ASSERT_TRUE(run.result.ok);
  const auto& rows = run.sampler.rows();
  ASSERT_FALSE(rows.empty());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].start, rows[i].end);
    if (i > 0) {
      EXPECT_EQ(rows[i].start, rows[i - 1].end);
    }
    // Interior boundaries are multiples of the interval; only the final
    // (flushed) row may end off-boundary at the run's wall time.
    if (i + 1 < rows.size()) {
      EXPECT_EQ(rows[i].end % 750, 0u);
    }
  }
  EXPECT_EQ(rows.front().start, 0u);
  EXPECT_GE(rows.back().end, run.result.wall_time);
}

TEST(IntervalSampler, CsvHasHeaderAndOneLinePerRow) {
  const SampledRun run = sampled_fft(2000, 8, ClusterStyle::SharedCache);
  std::ostringstream os;
  run.sampler.write_csv(os);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, run.sampler.rows().size() + 1);
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header.rfind("interval,start_cycle,end_cycle,", 0), 0u);
  EXPECT_NE(header.find("read_misses"), std::string::npos);
  EXPECT_NE(header.find("t_sync"), std::string::npos);
}

TEST(IntervalSampler, JsonParsesAndEchoesColumns) {
  const SampledRun run = sampled_fft(2000, 8, ClusterStyle::SharedCache);
  std::ostringstream os;
  run.sampler.write_json(os);
  const testjson::Value doc = testjson::parse(os.str());
  ASSERT_TRUE(doc.has("columns"));
  EXPECT_EQ(doc.at("columns").array.size(), run.sampler.columns().size());
  ASSERT_TRUE(doc.has("rows"));
  EXPECT_EQ(doc.at("rows").array.size(), run.sampler.rows().size());
  ASSERT_TRUE(doc.has("final"));
  EXPECT_EQ(doc.at("final").at("reads").number,
            static_cast<double>(run.result.totals.reads));
}

TEST(IntervalSampler, ExtraCountersRideAlong) {
  obs::IntervalSampler s(1000);
  std::uint64_t external = 0;
  s.add_counter("external", [&external]() { return external; });
  auto app = make_app("fft", ProblemScale::Test);
  MachineSpec cfg = paper_machine(8, 16 * 1024);
  Simulator sim(cfg);
  sim.set_observer(&s);
  external = 5;  // registered before the run; sampled like any counter
  const SimResult r = sim.run(*app);
  ASSERT_TRUE(r.ok);
  const std::size_t col = column_index(s, "external");
  EXPECT_EQ(s.final_totals()[col], 5u);
}

}  // namespace
}  // namespace csim
