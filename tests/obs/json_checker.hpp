// Minimal strict JSON parser for observability-format tests: parses a
// document into a small DOM (or throws std::runtime_error with position
// info). Supports the full JSON grammar the simulator emits: objects,
// arrays, strings with escapes, numbers, booleans, null. Test-only — the
// library itself never parses JSON it didn't write.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace csim::testjson {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is(Kind k) const noexcept { return kind == k; }
  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::Object && object.count(key) != 0;
  }
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("json: missing key '" + key + "'");
    return object.at(key);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing data after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
                fail("bad \\u escape");
              }
            }
            out += '?';  // tests only check structure, not code points
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  Value value() {
    skip_ws();
    Value v;
    const char c = peek();
    if (c == '{') {
      v.kind = Value::Kind::Object;
      ++pos_;
      skip_ws();
      if (consume('}')) return v;
      while (true) {
        skip_ws();
        std::string key = string_body();
        skip_ws();
        expect(':');
        v.object[std::move(key)] = value();
        skip_ws();
        if (consume('}')) return v;
        expect(',');
      }
    }
    if (c == '[') {
      v.kind = Value::Kind::Array;
      ++pos_;
      skip_ws();
      if (consume(']')) return v;
      while (true) {
        v.array.push_back(value());
        skip_ws();
        if (consume(']')) return v;
        expect(',');
      }
    }
    if (c == '"') {
      v.kind = Value::Kind::String;
      v.str = string_body();
      return v;
    }
    if (c == 't') {
      literal("true");
      v.kind = Value::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      literal("false");
      v.kind = Value::Kind::Bool;
      return v;
    }
    if (c == 'n') {
      literal("null");
      return v;
    }
    // Number: -?digits[.digits][(e|E)[+-]digits]
    v.kind = Value::Kind::Number;
    const std::size_t start = pos_;
    consume('-');
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      fail("bad number");
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace csim::testjson
