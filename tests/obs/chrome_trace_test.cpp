// TimelineTracer tests: a traced run produces a structurally valid Chrome
// trace-event JSON document (the ISSUE's schema check), with per-processor
// tracks, balanced async miss spans, and events inside the simulated
// timeline.
#include "src/obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"
#include "src/report/experiment.hpp"
#include "tests/obs/json_checker.hpp"

namespace csim {
namespace {

using testjson::Value;

struct TracedRun {
  SimResult result;
  Value doc;
};

/// Runs fft at test scale with a tracer attached and parses the JSON.
TracedRun traced_fft(unsigned ppc, ClusterStyle style) {
  auto app = make_app("fft", ProblemScale::Test);
  MachineSpec cfg = paper_machine(ppc, 16 * 1024);
  cfg.cluster_style = style;
  obs::TimelineTracer tracer;
  TracedRun out;
  out.result = simulate(*app, cfg, &tracer);
  EXPECT_GT(tracer.size(), 0u);
  std::ostringstream os;
  tracer.write_json(os);
  out.doc = testjson::parse(os.str());
  return out;
}

/// Chrome trace-event schema: every event object must carry ph/pid/tid/ts
/// (metadata aside), phase-specific fields, and known phase letters.
void check_schema(const Value& doc, const SimResult& r) {
  ASSERT_TRUE(doc.is(Value::Kind::Object));
  ASSERT_TRUE(doc.has("traceEvents"));
  const Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is(Value::Kind::Array));
  ASSERT_FALSE(events.array.empty());

  std::map<std::string, unsigned> phases;
  std::map<double, unsigned> async_begin, async_end;
  std::set<double> thread_tids;
  for (const Value& e : events.array) {
    ASSERT_TRUE(e.is(Value::Kind::Object));
    ASSERT_TRUE(e.has("ph"));
    const std::string ph = e.at("ph").str;
    ++phases[ph];
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    if (ph == "M") {
      ASSERT_TRUE(e.has("args"));
      continue;
    }
    ASSERT_TRUE(e.has("cat")) << "non-metadata event without category";
    ASSERT_TRUE(e.has("ts"));
    const double ts = e.at("ts").number;
    EXPECT_GE(ts, 0.0);
    EXPECT_LE(ts, static_cast<double>(r.wall_time));
    if (ph == "X") {
      ASSERT_TRUE(e.has("dur"));
      EXPECT_GE(e.at("dur").number, 0.0);
      EXPECT_LE(ts + e.at("dur").number, static_cast<double>(r.wall_time));
      thread_tids.insert(e.at("tid").number);
    } else if (ph == "b") {
      ++async_begin[e.at("id").number];
    } else if (ph == "e") {
      ++async_end[e.at("id").number];
    } else {
      EXPECT_EQ(ph, "i") << "unexpected phase '" << ph << "'";
      ASSERT_TRUE(e.has("s")) << "instant event without scope";
    }
  }

  // Miss round-trips are async begin/end pairs matched by id.
  EXPECT_EQ(async_begin, async_end) << "unbalanced async begin/end pairs";
  EXPECT_FALSE(async_begin.empty()) << "a 16KB fft run must record misses";

  // One named track per processor plus the per-cluster process names.
  EXPECT_EQ(phases["M"],
            r.config.num_procs + r.config.num_clusters() + 1);
  // Every processor ran, so every processor has at least one slice.
  EXPECT_EQ(thread_tids.size(), r.config.num_procs);
}

TEST(TimelineTracer, SharedCacheTraceIsValidChromeTraceJson) {
  const TracedRun t = traced_fft(8, ClusterStyle::SharedCache);
  ASSERT_TRUE(t.result.ok);
  check_schema(t.doc, t.result);
}

TEST(TimelineTracer, SharedMemoryTraceIsValidChromeTraceJson) {
  const TracedRun t = traced_fft(4, ClusterStyle::SharedMemory);
  ASSERT_TRUE(t.result.ok);
  check_schema(t.doc, t.result);
}

TEST(TimelineTracer, TracedRunStatisticsMatchUntraced) {
  // Attaching the tracer must not perturb the simulation: bit-identical
  // wall time and counters (the observer reads, never steers).
  auto app1 = make_app("fft", ProblemScale::Test);
  auto app2 = make_app("fft", ProblemScale::Test);
  MachineSpec cfg = paper_machine(8, 16 * 1024);
  obs::TimelineTracer tracer;
  const SimResult traced = simulate(*app1, cfg, &tracer);
  const SimResult plain = simulate(*app2, cfg);
  EXPECT_EQ(traced.wall_time, plain.wall_time);
  EXPECT_EQ(traced.events, plain.events);
  EXPECT_EQ(traced.totals, plain.totals);
  EXPECT_EQ(traced.per_proc, plain.per_proc);
}

TEST(TimelineTracer, InvalidationsLandOnMemorySystemTrack) {
  const TracedRun t = traced_fft(1, ClusterStyle::SharedCache);
  ASSERT_TRUE(t.result.ok);
  ASSERT_GT(t.result.totals.invalidations, 0u);
  const double memory_pid =
      static_cast<double>(t.result.config.num_clusters());
  bool found = false;
  for (const Value& e : t.doc.at("traceEvents").array) {
    if (e.at("name").str == "invalidation") {
      EXPECT_EQ(e.at("pid").number, memory_pid);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "invalidation rounds must appear in the trace";
}

TEST(TimelineTracer, WriteJsonFileRejectsBadPath) {
  obs::TimelineTracer tracer;
  EXPECT_THROW(tracer.write_json_file("/nonexistent/dir/trace.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace csim
