// Live multi-core speedup gate for the cluster-parallel engine
// (src/core/par_engine.cpp): on a host with >= 4 cores, the same ocean
// paper-scale run at --par 4 must finish at least 1.5x faster than at
// --par 1. This is the tentpole claim of epoch batching + window skipping —
// without them the per-window coordinator round trip eats the parallelism.
//
// Runtime-gated: wall-clock assertions are only meaningful when the four
// workers get four real cores, so the test skips LOUDLY (GTEST_SKIP with
// the core count in the message) on smaller hosts instead of flaking. The
// committed-baseline pins (perf_baseline_test.cpp) cover those hosts.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/apps/app.hpp"
#include "src/core/machine.hpp"
#include "src/core/simulator.hpp"

namespace csim {
namespace {

/// Best-of-3 wall seconds for one ocean paper run at `workers` workers
/// (best-of damps scheduler noise; the workload is deterministic).
double best_seconds(unsigned workers) {
  const MachineSpec cfg = MachineSpecBuilder{}
                              .procs(64)
                              .procs_per_cluster(4)  // 16 clusters / 4 workers
                              .style(ClusterStyle::SharedCache)
                              .cache_kb(16)
                              .parallel_workers(workers)
                              .build();
  double best = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    auto app = make_app("ocean", ProblemScale::Paper);
    const auto start = std::chrono::steady_clock::now();
    const SimResult r = simulate(*app, cfg);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_TRUE(r.ok);
    if (pass == 0 || s < best) best = s;
  }
  return best;
}

TEST(ParScaling, FourWorkersBeatOneByHalfOnCapableHosts) {
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    GTEST_SKIP() << "SKIPPING par4-vs-par1 scaling assertion: host reports "
                 << cores << " core(s), need >= 4 for a meaningful "
                 << "wall-clock ratio (run on a multi-core host to enforce "
                 << "the 1.5x gate)";
  }
  const double par1 = best_seconds(1);
  const double par4 = best_seconds(4);
  ASSERT_GT(par4, 0.0);
  const double speedup = par1 / par4;
  EXPECT_GE(speedup, 1.5) << "par4 speedup over par1 is only " << speedup
                          << "x (par1 " << par1 << "s, par4 " << par4
                          << "s) — epoch batching regression?";
}

}  // namespace
}  // namespace csim
