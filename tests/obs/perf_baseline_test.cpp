// Perf-gate tests: parsing the BENCH_perf.json row format, the regression
// threshold arithmetic, the missing-benchmark failure mode, and the delta
// table the CI job prints on every run.
#include "src/obs/perf_baseline.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace csim {
namespace {

/// A report in the shape perf_micro --json emits (Google Benchmark output
/// with our sim_refs_per_sec counter on each result row).
std::string report_json(double shared_cache, double shared_memory) {
  std::ostringstream os;
  os << "{\n"
     << "  \"context\": {\"benchmark\": \"perf_micro\"},\n"
     << "  \"benchmarks\": [\n"
     << "    {\"name\": \"end_to_end/shared_cache\", \"sim_refs_per_sec\": "
     << shared_cache << "},\n"
     << "    {\"name\": \"end_to_end/shared_memory\", \"sim_refs_per_sec\": "
     << shared_memory << "}\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

obs::PerfReport parse(const std::string& text) {
  std::istringstream is(text);
  return obs::load_perf_report(is);
}

TEST(PerfBaseline, ParsesNamesAndThroughput) {
  const obs::PerfReport rep = parse(report_json(2.0e6, 1.5e6));
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_EQ(rep.rows[0].name, "end_to_end/shared_cache");
  EXPECT_DOUBLE_EQ(rep.rows[0].refs_per_sec, 2.0e6);
  EXPECT_EQ(rep.rows[1].name, "end_to_end/shared_memory");
  EXPECT_DOUBLE_EQ(rep.rows[1].refs_per_sec, 1.5e6);
}

TEST(PerfBaseline, ParsesCommittedBaselineFile) {
  // The in-repo baseline must always stay loadable — the CI gate depends
  // on it.
  const obs::PerfReport rep =
      obs::load_perf_report_file(CSIM_SOURCE_DIR "/BENCH_perf.json");
  EXPECT_FALSE(rep.rows.empty());
  for (const obs::PerfRow& r : rep.rows) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_GT(r.refs_per_sec, 0.0);
  }
}

TEST(PerfBaseline, CommittedBaselinePinsTheSampledSpeedup) {
  // The headline claim of interval sampling (docs/PERFORMANCE.md "Sampled
  // simulation"): >= 10x sim_refs_per_sec over full detail on the
  // paper-scale fmm rows (measured 13-14x), with the ocean row held to a
  // softer floor (measured 10-11x). This reads the committed baseline, so
  // it is deterministic; the CI perf gate (tools/perf_check, 25% band)
  // keeps the committed numbers honest against fresh runs.
  const obs::PerfReport rep =
      obs::load_perf_report_file(CSIM_SOURCE_DIR "/BENCH_perf.json");
  const auto rate = [&](const std::string& name) {
    for (const obs::PerfRow& r : rep.rows) {
      if (r.name == name) return r.refs_per_sec;
    }
    ADD_FAILURE() << "row missing from BENCH_perf.json: " << name;
    return 0.0;
  };
  const auto ratio = [&](const std::string& full_row) {
    const double full = rate(full_row);
    const double sampled = rate(full_row + "/sampled");
    return full > 0.0 ? sampled / full : 0.0;
  };
  EXPECT_GE(ratio("end_to_end/shared_cache/ppc8/fmm_paper"), 10.0);
  EXPECT_GE(ratio("end_to_end/shared_memory/ppc8/fmm_paper"), 10.0);
  EXPECT_GE(ratio("end_to_end/shared_cache/ppc8/ocean_paper"), 8.0);
}

TEST(PerfBaseline, CommittedBaselinePinsParallelSingleWorkerOverhead) {
  // The window engine at --par 1 runs the same simulation through windowed
  // scheduling with no threads; epoch batching and window skipping must
  // keep it within 10% of the sequential engine on the tracked ocean
  // paper row (docs/PERFORMANCE.md "Cluster-parallel execution"). Also
  // present: the par_scaling pair and the sampled-parallel composed row —
  // their being in the committed baseline is what lets the CI gate watch
  // them; the live multi-core ratio is asserted by ParScaling instead
  // (baseline hosts may be single-core, where par4 degrades to par1).
  const obs::PerfReport rep =
      obs::load_perf_report_file(CSIM_SOURCE_DIR "/BENCH_perf.json");
  const auto rate = [&](const std::string& name) {
    for (const obs::PerfRow& r : rep.rows) {
      if (r.name == name) return r.refs_per_sec;
    }
    ADD_FAILURE() << "row missing from BENCH_perf.json: " << name;
    return 0.0;
  };
  const double seq = rate("end_to_end/shared_cache/ppc8/ocean_paper");
  const double par1 = rate("end_to_end/shared_cache/ppc8/ocean_paper/par1");
  ASSERT_GT(seq, 0.0);
  EXPECT_GE(par1, 0.9 * seq)
      << "par1 fell below 0.9x sequential: " << par1 << " vs " << seq;
  EXPECT_GT(rate("end_to_end/shared_cache/ppc8/ocean_paper/par4/sampled"),
            0.0);
  EXPECT_GT(rate("par_scaling/par1"), 0.0);
  EXPECT_GT(rate("par_scaling/par4"), 0.0);
}

TEST(PerfBaseline, RejectsEmptyAndMalformedReports) {
  EXPECT_THROW(parse("{}"), std::runtime_error);
  EXPECT_THROW(parse("not json at all"), std::runtime_error);
  // A row with a name but no throughput is not a result row; with no valid
  // rows the report is rejected rather than silently passing the gate.
  EXPECT_THROW(parse("{\"name\": \"end_to_end/x\"}"), std::runtime_error);
  // Non-positive throughput would make every comparison vacuous.
  EXPECT_THROW(parse(report_json(0.0, 1.0e6)), std::runtime_error);
  EXPECT_THROW(obs::load_perf_report_file("/nonexistent/bench.json"),
               std::runtime_error);
}

TEST(PerfBaseline, GatePassesWithinThreshold) {
  const obs::PerfReport base = parse(report_json(1.0e6, 1.0e6));
  // 20% down and 10% up: both inside a 25% gate.
  const obs::PerfReport cur = parse(report_json(0.8e6, 1.1e6));
  const obs::GateResult g = obs::check_perf(base, cur, 0.25);
  EXPECT_TRUE(g.ok);
  ASSERT_EQ(g.deltas.size(), 2u);
  EXPECT_FALSE(g.deltas[0].regressed);
  EXPECT_FALSE(g.deltas[1].regressed);
  EXPECT_DOUBLE_EQ(g.deltas[0].ratio, 0.8);
  EXPECT_TRUE(g.missing.empty());
}

TEST(PerfBaseline, GateFailsOnRegressionBeyondThreshold) {
  const obs::PerfReport base = parse(report_json(1.0e6, 1.0e6));
  const obs::PerfReport cur = parse(report_json(0.7e6, 1.0e6));  // -30%
  const obs::GateResult g = obs::check_perf(base, cur, 0.25);
  EXPECT_FALSE(g.ok);
  EXPECT_TRUE(g.deltas[0].regressed);
  EXPECT_FALSE(g.deltas[1].regressed);
  // Exactly at the threshold is still a pass (strict < comparison).
  const obs::PerfReport edge = parse(report_json(0.75e6, 1.0e6));
  EXPECT_TRUE(obs::check_perf(base, edge, 0.25).ok);
}

TEST(PerfBaseline, GateFailsWhenBenchmarkVanishes) {
  const obs::PerfReport base = parse(report_json(1.0e6, 1.0e6));
  obs::PerfReport cur = base;
  cur.rows.pop_back();  // shared_memory disappeared from the current run
  const obs::GateResult g = obs::check_perf(base, cur, 0.25);
  EXPECT_FALSE(g.ok);
  ASSERT_EQ(g.missing.size(), 1u);
  EXPECT_EQ(g.missing[0], "end_to_end/shared_memory");
  EXPECT_EQ(g.deltas.size(), 1u);
}

TEST(PerfBaseline, DeltaTableShowsVerdicts) {
  const obs::PerfReport base = parse(report_json(1.0e6, 1.0e6));
  obs::PerfReport cur = parse(report_json(0.5e6, 1.0e6));
  cur.rows.pop_back();
  const obs::GateResult g = obs::check_perf(base, cur, 0.25);
  std::ostringstream os;
  obs::write_delta_table(os, g, 0.25);
  const std::string table = os.str();
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
  EXPECT_NE(table.find("MISSING"), std::string::npos);
  EXPECT_NE(table.find("gate: fail below 75% of baseline -> FAIL"),
            std::string::npos);

  std::ostringstream ok_os;
  obs::write_delta_table(ok_os, obs::check_perf(base, base, 0.25), 0.25);
  EXPECT_NE(ok_os.str().find("-> PASS"), std::string::npos);
  EXPECT_EQ(ok_os.str().find("REGRESSED"), std::string::npos);
}

}  // namespace
}  // namespace csim
