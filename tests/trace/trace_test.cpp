// Trace capture / replay tests.
#include "src/trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Reads a saved trace file into bytes for corruption tests.
std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small valid on-disk trace (2 procs, 64-byte lines, 2 records) whose
/// bytes the error-path tests then corrupt. File layout: magic[0..3],
/// version[4], procs[5], line_bytes[6..7], count[8..15], records from 16.
std::vector<char> valid_trace_bytes(const std::string& path) {
  Trace t(2, 64);
  t.append(TraceRecord{0, AccessKind::Read, 0x40});
  t.append(TraceRecord{1, AccessKind::Write, 0x80});
  t.save(path);
  return slurp(path);
}

TEST(Trace, SaveLoadRoundtrip) {
  Trace t(16, 64);
  t.append(TraceRecord{3, AccessKind::Read, 0x1040});
  t.append(TraceRecord{7, AccessKind::Write, 0xdeadbee0});
  t.append(TraceRecord{0, AccessKind::Read, 0});
  const std::string path = temp_path("csim_roundtrip.trace");
  t.save(path);
  const Trace u = Trace::load(path);
  EXPECT_EQ(u.num_procs(), 16u);
  EXPECT_EQ(u.line_bytes(), 64u);
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u.records()[0], t.records()[0]);
  EXPECT_EQ(u.records()[1], t.records()[1]);
  EXPECT_EQ(u.records()[2], t.records()[2]);
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage) {
  const std::string path = temp_path("csim_garbage.trace");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
  }
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(Trace::load("/nonexistent/dir/x.trace"), std::runtime_error);
}

TEST(Trace, LoadRejectsBadVersion) {
  const std::string path = temp_path("csim_badversion.trace");
  std::vector<char> bytes = valid_trace_bytes(path);
  bytes[4] = 2;  // unknown format version
  spit(path, bytes);
  EXPECT_THROW(
      {
        try {
          Trace::load(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("bad version"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsTruncatedHeader) {
  const std::string path = temp_path("csim_shortheader.trace");
  std::vector<char> bytes = valid_trace_bytes(path);
  bytes.resize(7);  // magic + version + procs, but no line_bytes / count
  spit(path, bytes);
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsZeroProcessors) {
  const std::string path = temp_path("csim_zeroprocs.trace");
  std::vector<char> bytes = valid_trace_bytes(path);
  bytes[5] = 0;
  spit(path, bytes);
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsNonPowerOfTwoLineBytes) {
  const std::string path = temp_path("csim_badline.trace");
  std::vector<char> bytes = valid_trace_bytes(path);
  bytes[6] = 65;  // line_bytes = 65
  bytes[7] = 0;
  spit(path, bytes);
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsTruncatedRecords) {
  // A file cut mid-record must fail cleanly — and must not trust the header
  // record count enough to reserve for it (a corrupt count would otherwise
  // attempt a huge allocation before hitting EOF).
  const std::string path = temp_path("csim_truncated.trace");
  std::vector<char> bytes = valid_trace_bytes(path);
  bytes.resize(bytes.size() - 5);  // drop half of the last record
  spit(path, bytes);
  EXPECT_THROW(Trace::load(path), std::runtime_error);

  bytes = valid_trace_bytes(path);
  bytes[8] = 100;  // count claims 100 records; only 2 are present
  spit(path, bytes);
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsRecordProcBeyondHeader) {
  const std::string path = temp_path("csim_badproc.trace");
  std::vector<char> bytes = valid_trace_bytes(path);
  bytes[16] = 7;  // first record's proc id; header declares 2 processors
  spit(path, bytes);
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, RecordCapturesEveryReference) {
  auto app = make_app("radix", ProblemScale::Test);
  MachineSpec cfg = paper_machine(1, 0);
  cfg.num_procs = 16;
  const Trace t = record_trace(*app, cfg);

  auto app2 = make_app("radix", ProblemScale::Test);
  const SimResult r = simulate(*app2, cfg);
  EXPECT_EQ(t.size(), r.totals.reads + r.totals.writes);
}

TEST(Trace, ReplayMatchesExecutionDrivenMissesOnSameConfig) {
  auto app = make_app("fft", ProblemScale::Test);
  MachineSpec cfg = paper_machine(2, 8 * 1024);
  cfg.num_procs = 16;
  const Trace t = record_trace(*app, cfg);
  const ReplayResult rr = replay_trace(t, cfg);

  auto app2 = make_app("fft", ProblemScale::Test);
  const SimResult r = simulate(*app2, cfg);
  // Same interleaving, so hit/miss classification agrees closely; timing
  // (and with it merge-vs-hit boundaries and home assignment) differs.
  EXPECT_EQ(rr.totals.reads, r.totals.reads);
  EXPECT_EQ(rr.totals.writes, r.totals.writes);
  const double a = static_cast<double>(rr.totals.total_misses());
  const double b = static_cast<double>(r.totals.total_misses());
  EXPECT_NEAR(a, b, 0.15 * b) << "trace-driven misses should be within 15%";
}

TEST(Trace, ReplayAcrossClusterSizes) {
  auto app = make_app("ocean", ProblemScale::Test);
  MachineSpec cfg = paper_machine(1, 0);
  cfg.num_procs = 16;
  const Trace t = record_trace(*app, cfg);

  MachineSpec clustered = cfg;
  clustered.procs_per_cluster = 4;
  const ReplayResult r1 = replay_trace(t, cfg);
  const ReplayResult r4 = replay_trace(t, clustered);
  EXPECT_LT(r4.totals.total_misses(), r1.totals.total_misses())
      << "clustering must reduce Ocean's misses even in replay";
}

TEST(Trace, ReplayRejectsProcCountMismatch) {
  Trace t(16, 64);
  MachineSpec cfg = paper_machine(1, 0);  // 64 procs
  EXPECT_THROW(replay_trace(t, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace csim
