// Trace capture / replay tests.
#include "src/trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Trace, SaveLoadRoundtrip) {
  Trace t(16, 64);
  t.append(TraceRecord{3, AccessKind::Read, 0x1040});
  t.append(TraceRecord{7, AccessKind::Write, 0xdeadbee0});
  t.append(TraceRecord{0, AccessKind::Read, 0});
  const std::string path = temp_path("csim_roundtrip.trace");
  t.save(path);
  const Trace u = Trace::load(path);
  EXPECT_EQ(u.num_procs(), 16u);
  EXPECT_EQ(u.line_bytes(), 64u);
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u.records()[0], t.records()[0]);
  EXPECT_EQ(u.records()[1], t.records()[1]);
  EXPECT_EQ(u.records()[2], t.records()[2]);
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage) {
  const std::string path = temp_path("csim_garbage.trace");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
  }
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(Trace::load("/nonexistent/dir/x.trace"), std::runtime_error);
}

TEST(Trace, RecordCapturesEveryReference) {
  auto app = make_app("radix", ProblemScale::Test);
  MachineConfig cfg = paper_machine(1, 0);
  cfg.num_procs = 16;
  const Trace t = record_trace(*app, cfg);

  auto app2 = make_app("radix", ProblemScale::Test);
  const SimResult r = simulate(*app2, cfg);
  EXPECT_EQ(t.size(), r.totals.reads + r.totals.writes);
}

TEST(Trace, ReplayMatchesExecutionDrivenMissesOnSameConfig) {
  auto app = make_app("fft", ProblemScale::Test);
  MachineConfig cfg = paper_machine(2, 8 * 1024);
  cfg.num_procs = 16;
  const Trace t = record_trace(*app, cfg);
  const ReplayResult rr = replay_trace(t, cfg);

  auto app2 = make_app("fft", ProblemScale::Test);
  const SimResult r = simulate(*app2, cfg);
  // Same interleaving, so hit/miss classification agrees closely; timing
  // (and with it merge-vs-hit boundaries and home assignment) differs.
  EXPECT_EQ(rr.totals.reads, r.totals.reads);
  EXPECT_EQ(rr.totals.writes, r.totals.writes);
  const double a = static_cast<double>(rr.totals.total_misses());
  const double b = static_cast<double>(r.totals.total_misses());
  EXPECT_NEAR(a, b, 0.15 * b) << "trace-driven misses should be within 15%";
}

TEST(Trace, ReplayAcrossClusterSizes) {
  auto app = make_app("ocean", ProblemScale::Test);
  MachineConfig cfg = paper_machine(1, 0);
  cfg.num_procs = 16;
  const Trace t = record_trace(*app, cfg);

  MachineConfig clustered = cfg;
  clustered.procs_per_cluster = 4;
  const ReplayResult r1 = replay_trace(t, cfg);
  const ReplayResult r4 = replay_trace(t, clustered);
  EXPECT_LT(r4.totals.total_misses(), r1.totals.total_misses())
      << "clustering must reduce Ocean's misses even in replay";
}

TEST(Trace, ReplayRejectsProcCountMismatch) {
  Trace t(16, 64);
  MachineConfig cfg = paper_machine(1, 0);  // 64 procs
  EXPECT_THROW(replay_trace(t, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace csim
